"""A disk-backed Guttman R-tree with quadratic node splitting.

The tree stores its nodes as pages of a shared
:class:`~repro.storage.disk.DiskManager`; every node read or write goes
through the simulated buffer and is charged as a page access, which is the
metric of all experiments in the paper.

The class supports the operations the CIJ algorithms need:

* incremental insertion (to build the source point trees ``R_P`` / ``R_Q``),
* incremental deletion with Guttman's condense-tree (underflowing nodes are
  dissolved and their entries reinserted; ancestor MBRs are tightened all
  the way to the root), which is what the dynamic-workload maintenance
  layer (:mod:`repro.dynamic`) uses to keep the source trees current,
* rectangle range search (PM-CIJ probes ``R'_P`` with batch range queries),
* depth-first and Hilbert-ordered leaf iteration (Algorithms 3, 4 and 6
  visit the leaves of a source tree in Hilbert order of their centroids),
* raw node access for the best-first traversals in :mod:`repro.query` and
  :mod:`repro.voronoi`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.hilbert import hilbert_value
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.entries import (
    BRANCH_ENTRY_BYTES,
    POINT_ENTRY_BYTES,
    BranchEntry,
    LeafEntry,
    Node,
)
from repro.storage.disk import DiskManager


def capacities_for_page(
    page_size: int,
    leaf_entry_bytes: int = POINT_ENTRY_BYTES,
    branch_entry_bytes: int = BRANCH_ENTRY_BYTES,
) -> Tuple[int, int]:
    """Leaf and branch fanouts implied by a page size and entry sizes."""
    leaf_capacity = max(2, page_size // leaf_entry_bytes)
    branch_capacity = max(2, page_size // branch_entry_bytes)
    return leaf_capacity, branch_capacity


class RTree:
    """A two-dimensional R-tree stored through a simulated disk manager.

    Parameters
    ----------
    disk:
        Shared page store; node accesses are charged against its counters.
    tag:
        Label attached to this tree's pages so experiments can attribute
        I/O (e.g. ``"RP"``, ``"RQ"``, ``"RP_voronoi"``).
    page_size:
        Page size in bytes; defaults to the disk manager's page size.
    leaf_capacity, branch_capacity:
        Maximum entries per node; derived from the page size when omitted.
    """

    def __init__(
        self,
        disk: DiskManager,
        tag: str,
        page_size: Optional[int] = None,
        leaf_capacity: Optional[int] = None,
        branch_capacity: Optional[int] = None,
    ):
        self.disk = disk
        self.tag = tag
        self.page_size = page_size if page_size is not None else disk.page_size
        default_leaf, default_branch = capacities_for_page(self.page_size)
        self.leaf_capacity = leaf_capacity if leaf_capacity is not None else default_leaf
        self.branch_capacity = (
            branch_capacity if branch_capacity is not None else default_branch
        )
        if self.leaf_capacity < 2 or self.branch_capacity < 2:
            raise ValueError("node capacities must be at least 2")
        self.root_page: Optional[int] = None
        self.height = 0
        self.size = 0

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------
    def read_node(self, page_id: int) -> Node:
        """Read a node, charging a page access on a buffer miss."""
        return self.disk.read(page_id)

    def peek_node(self, page_id: int) -> Node:
        """Read a node without charging I/O (oracle/maintenance access)."""
        return self.disk.peek(page_id)

    def read_root(self) -> Node:
        """Read the root node; raises if the tree is empty."""
        if self.root_page is None:
            raise ValueError("the tree is empty")
        return self.read_node(self.root_page)

    def domain(self) -> Rect:
        """MBR of the whole tree (root MBR), without charging I/O."""
        if self.root_page is None:
            raise ValueError("the tree is empty")
        return self.peek_node(self.root_page).mbr()

    def is_empty(self) -> bool:
        return self.root_page is None

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert_point(self, oid: int, point: Point) -> None:
        """Insert a data point."""
        self.insert_entry(LeafEntry.for_point(oid, point))

    def insert_entry(self, entry: LeafEntry) -> None:
        """Insert a prepared leaf entry (points or arbitrary records)."""
        if self.root_page is None:
            root = Node(0, [entry])
            self.root_page = self.disk.allocate(self.tag, root)
            self.height = 1
            self.size = 1
            return
        split = self._insert_recursive(self.root_page, entry, self.height - 1)
        if split is not None:
            self._grow_root(split)
        self.size += 1

    def bulk_insert(self, entries: Iterable[LeafEntry]) -> None:
        """Insert many leaf entries one by one (convenience helper)."""
        for entry in entries:
            self.insert_entry(entry)

    # ------------------------------------------------------------------
    # deletion (condense-tree)
    # ------------------------------------------------------------------
    def delete_point(self, oid: int, point: Point) -> bool:
        """Delete the data point ``(oid, point)``; returns ``False`` if absent."""
        return self.delete_entry(oid, Rect.from_point(point))

    def delete_entry(self, oid: int, mbr: Rect) -> bool:
        """Delete the leaf entry matching ``oid`` and ``mbr`` exactly.

        Guttman's condense-tree: the entry is removed from its leaf, every
        ancestor MBR is tightened to exactly cover its child again, nodes
        that underflow below the minimum fill are dissolved (their pages
        freed) and their leaf entries reinserted, and a root left with a
        single child is replaced by that child.  Returns whether a matching
        entry was found.
        """
        if self.root_page is None:
            return False
        orphans: List[LeafEntry] = []
        if not self._delete_recursive(self.root_page, oid, mbr, orphans):
            return False
        self.size -= 1
        self._shrink_root()
        for entry in orphans:
            # Orphans were already counted in ``size``; reinsertion goes
            # through the one true insert path and compensates the bump.
            self.insert_entry(entry)
            self.size -= 1
        return True

    def _delete_recursive(
        self, page_id: int, oid: int, mbr: Rect, orphans: List[LeafEntry]
    ) -> bool:
        """Remove the entry from the subtree at ``page_id``; condense upward."""
        node = self.peek_node(page_id)
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.oid == oid and entry.mbr == mbr:
                    del node.entries[i]
                    self.disk.write(page_id, node)
                    return True
            return False
        for branch in node.entries:
            if not branch.mbr.contains_rect(mbr):
                continue
            if not self._delete_recursive(branch.child_page, oid, mbr, orphans):
                continue
            child = self.peek_node(branch.child_page)
            if len(child.entries) < self._min_fill(child):
                node.entries.remove(branch)
                self._dissolve_subtree(branch.child_page, orphans)
            else:
                branch.mbr = child.mbr()
            self.disk.write(page_id, node)
            return True
        return False

    def _dissolve_subtree(self, page_id: int, orphans: List[LeafEntry]) -> None:
        """Free every page of a subtree, collecting its leaf entries."""
        node = self.peek_node(page_id)
        if node.is_leaf:
            orphans.extend(node.entries)
        else:
            for entry in node.entries:
                self._dissolve_subtree(entry.child_page, orphans)
        self.disk.free(page_id)

    def _shrink_root(self) -> None:
        """Collapse degenerate roots left behind by the condense pass."""
        while self.root_page is not None:
            root = self.peek_node(self.root_page)
            if not root.entries:
                self.disk.free(self.root_page)
                self.root_page = None
                self.height = 0
                return
            if root.is_leaf or len(root.entries) > 1:
                return
            child_page = root.entries[0].child_page
            self.disk.free(self.root_page)
            self.root_page = child_page
            self.height -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_search(self, region: Rect) -> List[LeafEntry]:
        """All leaf entries whose MBR intersects ``region``."""
        results: List[LeafEntry] = []
        if self.root_page is None:
            return results
        stack = [self.root_page]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                results.extend(e for e in node.entries if region.intersects(e.mbr))
            else:
                stack.extend(
                    e.child_page for e in node.entries if region.intersects(e.mbr)
                )
        return results

    def range_search_where(
        self, region: Rect, predicate: Callable[[LeafEntry], bool]
    ) -> List[LeafEntry]:
        """Range search with an extra refinement predicate on leaf entries."""
        return [e for e in self.range_search(region) if predicate(e)]

    def count_in_range(self, region: Rect) -> int:
        """Number of leaf entries intersecting ``region``."""
        return len(self.range_search(region))

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_leaf_nodes(self, order: str = "dfs") -> Iterator[Node]:
        """Yield leaf nodes, charging I/O for every node visited.

        ``order`` may be ``"dfs"`` (plain depth-first) or ``"hilbert"``
        (children visited in Hilbert order of their MBR centres, the order
        used by the CIJ algorithms so that consecutive leaves are spatially
        close and the LRU buffer is effective).
        """
        for _, node in self.iter_leaf_nodes_with_pages(order=order):
            yield node

    def iter_leaf_nodes_with_pages(
        self, order: str = "dfs"
    ) -> Iterator[Tuple[int, Node]]:
        """Yield ``(page_id, leaf node)`` pairs, charging I/O per node.

        The same charged traversal as :meth:`iter_leaf_nodes`; the page id
        lets a caller name a leaf as a serializable work-unit payload (the
        engine's :class:`~repro.engine.units.WorkUnit` plane) and re-open
        it later through :meth:`peek_node` without charging it twice.
        """
        if self.root_page is None:
            return
        if order not in ("dfs", "hilbert"):
            raise ValueError(f"unknown traversal order: {order!r}")
        domain = self.domain() if order == "hilbert" else None
        stack: List[int] = [self.root_page]
        while stack:
            page_id = stack.pop()
            node = self.read_node(page_id)
            if node.is_leaf:
                yield page_id, node
                continue
            children = list(node.entries)
            if order == "hilbert":
                children.sort(
                    key=lambda e: hilbert_value(e.mbr.center(), domain), reverse=True
                )
            stack.extend(e.child_page for e in children)

    def plan_leaf_pages(self, order: str = "dfs") -> Iterator[Tuple[int, Optional[Rect]]]:
        """Uncounted twin of :meth:`iter_leaf_nodes` for prefetch planning.

        Yields ``(page_id, leaf MBR)`` in exactly the order the charged
        iterator yields the leaves (same traversal, same stable Hilbert
        sort), but through :meth:`peek_node` — so a prefetch pipeline can
        look ahead of the measured leaf stream without perturbing the
        paper's buffer/counter accounting, and without pulling pages
        through the charged iterator early (which would reorder the LRU
        hit/miss sequence).
        """
        if self.root_page is None:
            return
        if order not in ("dfs", "hilbert"):
            raise ValueError(f"unknown traversal order: {order!r}")
        domain = self.domain() if order == "hilbert" else None
        stack: List[int] = [self.root_page]
        while stack:
            page_id = stack.pop()
            node = self.peek_node(page_id)
            if node.is_leaf:
                # An empty leaf (possible transiently under deletions) has
                # no MBR; it is still yielded to stay aligned with the
                # charged iterator, with ``None`` as its planning rectangle.
                yield page_id, (node.mbr() if node.entries else None)
                continue
            children = list(node.entries)
            if order == "hilbert":
                children.sort(
                    key=lambda e: hilbert_value(e.mbr.center(), domain), reverse=True
                )
            stack.extend(e.child_page for e in children)

    def iter_all_nodes(self) -> Iterator[Node]:
        """Yield every node of the tree depth-first, charging I/O."""
        if self.root_page is None:
            return
        stack = [self.root_page]
        while stack:
            node = self.read_node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_page for e in node.entries)

    def all_leaf_entries(self) -> List[LeafEntry]:
        """Every leaf entry, *without* charging I/O (used by oracles/tests)."""
        results: List[LeafEntry] = []
        if self.root_page is None:
            return results
        stack = [self.root_page]
        while stack:
            node = self.peek_node(stack.pop())
            if node.is_leaf:
                results.extend(node.entries)
            else:
                stack.extend(e.child_page for e in node.entries)
        return results

    def node_count(self) -> int:
        """Total number of nodes (pages) in the tree, without charging I/O."""
        if self.root_page is None:
            return 0
        count = 0
        stack = [self.root_page]
        while stack:
            node = self.peek_node(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(e.child_page for e in node.entries)
        return count

    def leaf_count(self) -> int:
        """Number of leaf nodes, without charging I/O."""
        if self.root_page is None:
            return 0
        count = 0
        stack = [self.root_page]
        while stack:
            node = self.peek_node(stack.pop())
            if node.is_leaf:
                count += 1
            else:
                stack.extend(e.child_page for e in node.entries)
        return count

    def check_invariants(self, enforce_min_fill: bool = False) -> None:
        """Raise ``AssertionError`` if structural invariants are violated.

        Always checked, after any insert/delete stream:

        * every branch entry's MBR is *exactly* the MBR of its child node
          (not merely a superset — deletion must tighten ancestors),
        * node levels decrease by one towards the leaves and all leaf
          entries sit at the same depth,
        * fanout stays within bounds: no node exceeds its capacity (or, for
          multi-entry leaves, the page size) and no non-root node is empty,
        * ``size`` equals the number of stored leaf entries.

        ``enforce_min_fill`` additionally asserts Guttman's lower fanout
        bound (the quadratic split's ``2/5`` minimum fill) for every
        non-root node.  That bound holds for trees grown by insertion and
        maintained by :meth:`delete_entry`'s condense pass, but not for
        bulk-loaded trees, whose trailing page per level may be underfull
        by construction.
        """
        if self.root_page is None:
            assert self.size == 0, "an empty tree must report size 0"
            assert self.height == 0, "an empty tree must report height 0"
            return
        expected_leaf_depth = self.height - 1
        leaf_entries = 0

        def _recurse(page_id: int, depth: int) -> None:
            nonlocal leaf_entries
            node = self.peek_node(page_id)
            is_root = page_id == self.root_page
            assert node.entries, "a stored node must not be empty"
            assert len(node.entries) <= self._capacity(node) and (
                not node.is_leaf
                or len(node.entries) == 1
                or node.byte_size() <= self.page_size
            ), "node fanout must stay within capacity"
            if enforce_min_fill and not is_root:
                assert len(node.entries) >= self._min_fill(node), (
                    "non-root node below the minimum fill"
                )
            assert node.level == expected_leaf_depth - depth, (
                "node level must match its depth"
            )
            if node.is_leaf:
                assert depth == expected_leaf_depth, "leaves must share a common depth"
                leaf_entries += len(node.entries)
                return
            for entry in node.entries:
                child = self.peek_node(entry.child_page)
                assert entry.mbr == child.mbr(), (
                    "branch entry MBR must exactly cover its child"
                )
                _recurse(entry.child_page, depth + 1)

        _recurse(self.root_page, 0)
        assert leaf_entries == self.size, "size must count the stored leaf entries"

    # ------------------------------------------------------------------
    # internals: insertion
    # ------------------------------------------------------------------
    def _capacity(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.branch_capacity

    def _min_fill(self, node: Node) -> int:
        """Guttman's lower fanout bound (shared by split and condense)."""
        return max(1, self._capacity(node) * 2 // 5)

    def _insert_recursive(
        self, page_id: int, entry: LeafEntry, level_from_leaf: int
    ) -> Optional[BranchEntry]:
        """Insert into the subtree rooted at ``page_id``.

        Returns a new sibling branch entry when the node was split, or
        ``None`` otherwise.  The caller is responsible for updating its own
        entry MBR for ``page_id``.
        """
        node = self.peek_node(page_id)
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = self._choose_subtree(node, entry.mbr)
            split = self._insert_recursive(best.child_page, entry, level_from_leaf - 1)
            best.mbr = self.peek_node(best.child_page).mbr()
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > self._capacity(node) or (
            node.is_leaf and node.byte_size() > self.page_size
        ):
            sibling = self._split_node(node)
            sibling_page = self.disk.allocate(self.tag, sibling)
            self.disk.write(page_id, node)
            return BranchEntry(sibling.mbr(), sibling_page)
        self.disk.write(page_id, node)
        return None

    def _grow_root(self, sibling: BranchEntry) -> None:
        old_root = self.peek_node(self.root_page)
        left = BranchEntry(old_root.mbr(), self.root_page)
        new_root = Node(old_root.level + 1, [left, sibling])
        self.root_page = self.disk.allocate(self.tag, new_root)
        self.height += 1

    @staticmethod
    def _choose_subtree(node: Node, mbr: Rect) -> BranchEntry:
        """Guttman's criterion: least enlargement, ties by smallest area."""
        best = None
        best_key = None
        for entry in node.entries:
            key = (entry.mbr.enlargement(mbr), entry.mbr.area())
            if best_key is None or key < best_key:
                best, best_key = entry, key
        return best

    def _split_node(self, node: Node) -> Node:
        """Quadratic split; ``node`` keeps one group, the other is returned."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        min_fill = self._min_fill(node)
        while remaining:
            if len(group_a) + len(remaining) <= min_fill:
                group_a.extend(remaining)
                mbr_a = Rect.union_all([mbr_a] + [e.mbr for e in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) <= min_fill:
                group_b.extend(remaining)
                mbr_b = Rect.union_all([mbr_b] + [e.mbr for e in remaining])
                remaining = []
                break
            index, prefer_a = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
        node.entries = group_a
        return Node(node.level, group_b)

    @staticmethod
    def _pick_seeds(entries: Sequence[Any]) -> Tuple[int, int]:
        """The pair of entries with the largest dead space when combined."""
        worst_pair = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i].mbr.union(entries[j].mbr)
                waste = combined.area() - entries[i].mbr.area() - entries[j].mbr.area()
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(remaining: Sequence[Any], mbr_a: Rect, mbr_b: Rect) -> Tuple[int, bool]:
        """The entry with the strongest group preference, and that preference."""
        best_index = 0
        best_diff = -1.0
        prefer_a = True
        for i, entry in enumerate(remaining):
            enlarge_a = mbr_a.enlargement(entry.mbr)
            enlarge_b = mbr_b.enlargement(entry.mbr)
            diff = abs(enlarge_a - enlarge_b)
            if diff > best_diff:
                best_diff = diff
                best_index = i
                if enlarge_a != enlarge_b:
                    prefer_a = enlarge_a < enlarge_b
                else:
                    prefer_a = mbr_a.area() <= mbr_b.area()
        return best_index, prefer_a
