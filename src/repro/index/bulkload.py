"""Bottom-up bulk loading of R-trees.

Two flavours are provided:

* :func:`bulk_load_points` — Hilbert-sort-and-pack loading for point
  datasets, used when an experiment wants a well-clustered source tree
  without paying Guttman insertion writes.
* :class:`StreamingBulkLoader` / :func:`bulk_load_records` — the
  "optimized construction of R'_P and R'_Q" of Section III-C: records
  (Voronoi cells) arrive in Hilbert order of their generators and are packed
  sequentially into fixed-size leaf pages; upper levels are then packed from
  the leaf MBRs.  Node splits never happen, disk space is fully utilised and
  the construction I/O cost is exactly the cost of writing the new tree's
  pages.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.hilbert import hilbert_value
from repro.index.entries import BranchEntry, LeafEntry, Node
from repro.index.rtree import RTree
from repro.storage.disk import DiskManager


def bulk_load_points(
    disk: DiskManager,
    tag: str,
    points: Sequence[Point],
    oids: Optional[Sequence[int]] = None,
    domain: Optional[Rect] = None,
    page_size: Optional[int] = None,
) -> RTree:
    """Build a packed R-tree over ``points`` using Hilbert ordering.

    Parameters
    ----------
    disk, tag, page_size:
        Storage parameters, as for :class:`~repro.index.rtree.RTree`.
    points:
        The dataset; must be non-empty.
    oids:
        Object identifiers; defaults to positional indices.
    domain:
        Domain rectangle for the Hilbert mapping; defaults to the tight MBR
        of the dataset.
    """
    if not points:
        raise ValueError("cannot bulk load an empty pointset")
    if oids is None:
        oids = list(range(len(points)))
    if len(oids) != len(points):
        raise ValueError("oids and points must have the same length")
    if domain is None:
        domain = Rect.from_points(points)
    tree = RTree(disk, tag, page_size=page_size)
    order = sorted(range(len(points)), key=lambda i: hilbert_value(points[i], domain))
    loader = StreamingBulkLoader(tree)
    for i in order:
        loader.append(LeafEntry.for_point(oids[i], points[i]))
    loader.finish()
    return tree


def bulk_load_records(
    disk: DiskManager,
    tag: str,
    entries: Iterable[LeafEntry],
    page_size: Optional[int] = None,
) -> RTree:
    """Build a packed R-tree from prepared leaf entries, in arrival order.

    The caller is responsible for presenting the entries in a spatially
    coherent order (the CIJ algorithms use Hilbert order of the source
    leaves); this function just packs them into pages.
    """
    tree = RTree(disk, tag, page_size=page_size)
    loader = StreamingBulkLoader(tree)
    for entry in entries:
        loader.append(entry)
    loader.finish()
    return tree


class StreamingBulkLoader:
    """Pack leaf entries into pages as they arrive, then build upper levels.

    The loader mirrors the construction used by FM-CIJ and PM-CIJ: computed
    Voronoi cells are appended in (roughly) Hilbert order, each full leaf
    page is written out immediately, and when :meth:`finish` is called the
    internal levels are packed bottom-up from the leaf MBRs.  Every page
    written is charged to the disk manager, so the materialisation cost of
    the resulting tree is exactly its page count.
    """

    def __init__(self, tree: RTree):
        self.tree = tree
        self._pending: List[LeafEntry] = []
        self._pending_bytes = 0
        self._leaf_branches: List[BranchEntry] = []
        self._total = 0
        self._finished = False

    def append(self, entry: LeafEntry) -> None:
        """Add one leaf entry, flushing the current page when it fills up."""
        if self._finished:
            raise RuntimeError("cannot append to a finished bulk loader")
        overflows = (
            len(self._pending) >= self.tree.leaf_capacity
            or self._pending_bytes + entry.size_bytes > self.tree.page_size
        )
        if self._pending and overflows:
            self._flush_leaf()
        self._pending.append(entry)
        self._pending_bytes += entry.size_bytes
        self._total += 1

    def extend(self, entries: Iterable[LeafEntry]) -> None:
        """Append many entries."""
        for entry in entries:
            self.append(entry)

    def finish(self) -> RTree:
        """Flush the last leaf page and pack the internal levels."""
        if self._finished:
            return self.tree
        if self._pending:
            self._flush_leaf()
        self._finished = True
        if not self._leaf_branches:
            return self.tree
        level = 1
        branches = self._leaf_branches
        while len(branches) > 1:
            branches = self._pack_level(branches, level)
            level += 1
        # A single branch remains: its child is the root... unless the tree
        # has exactly one leaf page, in which case that leaf is the root.
        self.tree.root_page = branches[0].child_page
        self.tree.height = level
        self.tree.size = self._total
        return self.tree

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush_leaf(self) -> None:
        node = Node(0, self._pending)
        page_id = self.tree.disk.allocate(self.tree.tag, node)
        self._leaf_branches.append(BranchEntry(node.mbr(), page_id))
        self._pending = []
        self._pending_bytes = 0

    def _pack_level(self, branches: List[BranchEntry], level: int) -> List[BranchEntry]:
        capacity = self.tree.branch_capacity
        parents: List[BranchEntry] = []
        for start in range(0, len(branches), capacity):
            group = branches[start : start + capacity]
            node = Node(level, list(group))
            page_id = self.tree.disk.allocate(self.tree.tag, node)
            parents.append(BranchEntry(node.mbr(), page_id))
        return parents
