"""Hierarchical spatial access methods (R-trees).

Both CIJ inputs are "pointsets indexed by hierarchical multi-dimensional
indexes, like the R-tree"; FM-CIJ and PM-CIJ additionally build bulk-loaded
R-trees over Voronoi cells.  This subpackage provides:

* :class:`~repro.index.rtree.RTree` — a Guttman R-tree with quadratic node
  splitting, stored through the simulated :class:`~repro.storage.disk.DiskManager`
  so that every node access is charged as a page access,
* :mod:`~repro.index.bulkload` — Hilbert-ordered bottom-up packing used to
  build the Voronoi R-trees ``R'_P`` / ``R'_Q`` without node splits, plus a
  streaming loader that packs variable-size cell records into fixed pages,
* entry/node primitives shared by the query and join layers.
"""

from repro.index.entries import BranchEntry, LeafEntry, Node
from repro.index.rtree import RTree, capacities_for_page
from repro.index.bulkload import StreamingBulkLoader, bulk_load_points, bulk_load_records

__all__ = [
    "RTree",
    "LeafEntry",
    "BranchEntry",
    "Node",
    "capacities_for_page",
    "bulk_load_points",
    "bulk_load_records",
    "StreamingBulkLoader",
]
