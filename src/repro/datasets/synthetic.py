"""Synthetic pointset generators.

All generators are deterministic given a seed and emit points inside the
paper's normalised domain ``[0, 10000] x [0, 10000]``, deduplicated so that
Voronoi cells are always well defined.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: The normalised space domain used throughout the paper's evaluation.
DOMAIN = Rect(0.0, 0.0, 10000.0, 10000.0)


def uniform_points(n: int, seed: int = 0, domain: Rect = DOMAIN) -> List[Point]:
    """``n`` points drawn uniformly at random from ``domain``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    return _dedupe_fill(
        lambda: Point(
            rng.uniform(domain.xmin, domain.xmax), rng.uniform(domain.ymin, domain.ymax)
        ),
        n,
    )


def gaussian_points(
    n: int,
    seed: int = 0,
    domain: Rect = DOMAIN,
    center: Optional[Point] = None,
    spread_fraction: float = 0.15,
) -> List[Point]:
    """``n`` points from a clipped Gaussian around ``center``.

    ``spread_fraction`` is the standard deviation expressed as a fraction of
    the domain width/height.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if spread_fraction <= 0:
        raise ValueError("spread_fraction must be positive")
    rng = random.Random(seed)
    if center is None:
        center = domain.center()
    sx = domain.width * spread_fraction
    sy = domain.height * spread_fraction

    def sample() -> Point:
        x = min(domain.xmax, max(domain.xmin, rng.gauss(center.x, sx)))
        y = min(domain.ymax, max(domain.ymin, rng.gauss(center.y, sy)))
        return Point(x, y)

    return _dedupe_fill(sample, n)


def clustered_points(
    n: int,
    clusters: int = 10,
    seed: int = 0,
    domain: Rect = DOMAIN,
    cluster_spread: float = 0.03,
    uniform_fraction: float = 0.1,
    skewed_cluster_sizes: bool = True,
) -> List[Point]:
    """``n`` points organised in Gaussian clusters plus uniform background.

    Parameters
    ----------
    clusters:
        Number of cluster centres (drawn uniformly from the domain).
    cluster_spread:
        Cluster standard deviation as a fraction of the domain side.
    uniform_fraction:
        Fraction of points scattered uniformly, outside any cluster.
    skewed_cluster_sizes:
        When ``True``, cluster populations follow a heavy-tailed (Zipf-like)
        distribution, producing the large variation in adjacent Voronoi-cell
        areas observed on the real geographic datasets.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if clusters < 1:
        raise ValueError("clusters must be at least 1")
    rng = random.Random(seed)
    centers = [
        Point(rng.uniform(domain.xmin, domain.xmax), rng.uniform(domain.ymin, domain.ymax))
        for _ in range(clusters)
    ]
    if skewed_cluster_sizes:
        weights = [1.0 / (rank + 1) for rank in range(clusters)]
    else:
        weights = [1.0] * clusters
    total_weight = sum(weights)
    sx = domain.width * cluster_spread
    sy = domain.height * cluster_spread

    def sample() -> Point:
        if rng.random() < uniform_fraction:
            return Point(
                rng.uniform(domain.xmin, domain.xmax),
                rng.uniform(domain.ymin, domain.ymax),
            )
        pick = rng.uniform(0.0, total_weight)
        cumulative = 0.0
        center = centers[-1]
        for weight, candidate in zip(weights, centers):
            cumulative += weight
            if pick <= cumulative:
                center = candidate
                break
        x = min(domain.xmax, max(domain.xmin, rng.gauss(center.x, sx)))
        y = min(domain.ymax, max(domain.ymin, rng.gauss(center.y, sy)))
        return Point(x, y)

    return _dedupe_fill(sample, n)


def _dedupe_fill(sampler, n: int) -> List[Point]:
    """Draw samples until ``n`` distinct points have been collected."""
    seen = set()
    points: List[Point] = []
    attempts = 0
    limit = max(1000, 100 * n)
    while len(points) < n and attempts < limit:
        p = sampler()
        key = (p.x, p.y)
        if key not in seen:
            seen.add(key)
            points.append(p)
        attempts += 1
    if len(points) < n:
        raise RuntimeError("failed to generate enough distinct points")
    return points
