"""Dataset generators and the workload registry used by the experiments.

The paper evaluates on uniform synthetic pointsets and on five real
geographic datasets from the U.S. Board on Geographic Names.  The real data
cannot be redistributed or downloaded here, so :mod:`repro.datasets.real_like`
provides seeded synthetic stand-ins whose spatial skew (multi-cluster,
heavy-tailed cluster sizes) mimics the characteristics that matter for the
experiments: large variation in adjacent Voronoi-cell areas and join output
sizes comparable to the input size.  All generators normalise coordinates to
the paper's ``[0, 10000]`` domain.
"""

from repro.datasets.synthetic import (
    DOMAIN,
    clustered_points,
    gaussian_points,
    uniform_points,
)
from repro.datasets.real_like import REAL_DATASET_SPECS, real_like_dataset
from repro.datasets.workload import (
    WorkloadConfig,
    build_indexed_pointset,
    build_workload,
)

__all__ = [
    "DOMAIN",
    "uniform_points",
    "gaussian_points",
    "clustered_points",
    "real_like_dataset",
    "REAL_DATASET_SPECS",
    "WorkloadConfig",
    "build_workload",
    "build_indexed_pointset",
]
