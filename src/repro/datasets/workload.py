"""Workload construction: datasets plus their R-tree indexes on one disk.

Every experiment needs the same setup: generate (or load) two pointsets,
index each with an R-tree over a shared simulated disk, size the LRU buffer
as a percentage of the data size, and reset the I/O counters so that only
the measured algorithm is charged.  :func:`build_workload` performs those
steps and returns a small record the harness and the examples both use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.dynamic.updates import Update, UpdateBatch
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bulkload import bulk_load_points
from repro.index.rtree import RTree
from repro.storage.backends import default_storage_backend
from repro.storage.disk import DiskManager, PAGE_SIZE_DEFAULT


@dataclass
class WorkloadConfig:
    """Parameters shared by the experiment drivers."""

    #: Points in P (ignored when explicit points are supplied).
    n_p: int = 2000
    #: Points in Q.
    n_q: int = 2000
    #: Page size in bytes (the paper uses 1 KB).
    page_size: int = PAGE_SIZE_DEFAULT
    #: LRU buffer size as a fraction of the data size on disk (paper: 0.02).
    buffer_fraction: float = 0.02
    #: Random seed used by the default uniform generators.
    seed: int = 0
    #: Space domain.
    domain: Rect = DOMAIN
    #: Page-store backend (``memory``/``file``/``sqlite``/``remote``, or
    #: ``remote+file``/``remote+sqlite`` to pick a spawned page server's
    #: backing store); ``None`` uses ``$REPRO_STORAGE`` or memory, so a CI
    #: matrix can retarget every workload-built test without touching the
    #: tests.
    storage: Optional[str] = None
    #: Backing path for the file/sqlite backends, or ``HOST:PORT`` of an
    #: already-running page server for ``remote`` (``None`` = owned temp
    #: file / a freshly spawned server).
    storage_path: Optional[str] = None
    #: Simulated per-page fetch latency in seconds (see
    #: :class:`~repro.storage.disk.DiskManager`); makes the prefetch
    #: pipeline's latency hiding measurable via ``stall_time``/
    #: ``overlap_time``.
    fetch_latency: float = 0.0
    #: Overlapped-I/O mode runs against this workload should use
    #: (``off | next_batch | next_shard``); ``None`` leaves the engine
    #: default.  ``build_workload`` itself only validates it — the field
    #: is carried into :class:`~repro.engine.EngineConfig` by the callers
    #: that build both the workload and the run config
    #: (``common_influence_join``, the CLI).
    prefetch: Optional[str] = None
    #: Units of lookahead for the prefetch pipeline (``None`` = default).
    prefetch_depth: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.engine.config import PREFETCH_MODES

        if self.prefetch is not None and self.prefetch not in PREFETCH_MODES:
            raise ValueError(
                f"unknown prefetch mode {self.prefetch!r}; "
                f"expected one of {PREFETCH_MODES}"
            )
        if self.prefetch_depth is not None and self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")
        if self.fetch_latency < 0:
            raise ValueError("fetch_latency must be non-negative")


@dataclass
class Workload:
    """A fully prepared experiment input: two indexed pointsets, one disk."""

    disk: DiskManager
    tree_p: RTree
    tree_q: RTree
    points_p: List[Point]
    points_q: List[Point]
    domain: Rect

    def reset_measurement(self, buffer_fraction: Optional[float] = None) -> None:
        """Clear counters and the buffer before a measured run.

        When ``buffer_fraction`` is given the buffer is re-sized relative to
        the current data size on disk (both source trees).
        """
        if buffer_fraction is not None:
            self.disk.set_buffer_fraction(buffer_fraction)
        else:
            self.disk.buffer.clear()
        self.disk.reset_counters()

    def close(self) -> None:
        """Release the disk's backend resources (temp files are deleted)."""
        self.disk.close()

    def __enter__(self) -> "Workload":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def build_indexed_pointset(
    disk: DiskManager,
    tag: str,
    points: Sequence[Point],
    domain: Rect = DOMAIN,
    bulk: bool = True,
) -> RTree:
    """Index ``points`` with an R-tree whose construction I/O is not charged.

    The paper assumes the source trees already exist; their construction is
    therefore performed with I/O accounting suspended.  ``bulk`` selects
    Hilbert bulk loading (default) or one-by-one Guttman insertion, which is
    useful for tests that need a tree with "organically grown" node MBRs.
    """
    with disk.suspend_io_accounting():
        if bulk:
            tree = bulk_load_points(disk, tag, list(points), domain=domain)
        else:
            tree = RTree(disk, tag)
            for oid, point in enumerate(points):
                tree.insert_point(oid, point)
    return tree


@dataclass
class DynamicWorkloadConfig:
    """A dynamic workload: a base :class:`WorkloadConfig` plus an update stream.

    :func:`generate_update_batches` turns this into concrete
    :class:`~repro.dynamic.UpdateBatch` objects against a built workload;
    the dynamic benchmarks, the differential tests and the CLI examples all
    derive their streams from it so update workloads are reproducible from
    one seed.
    """

    #: Static base workload the stream starts from.
    base: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Number of update batches in the stream.
    batches: int = 5
    #: Insert/delete operations per batch.
    batch_size: int = 8
    #: Fraction of operations that are inserts (the rest are deletes).
    insert_fraction: float = 0.5
    #: Which sides receive updates: ``"P"``, ``"Q"`` or ``"both"``.
    sides: str = "both"
    #: Seed of the update stream (independent of the base data seed).
    seed: int = 0
    #: Never delete a side below this many points (a join needs data).
    min_side_size: int = 2

    def __post_init__(self) -> None:
        if self.sides not in ("P", "Q", "both"):
            raise ValueError(
                f"unknown sides {self.sides!r}; expected 'P', 'Q' or 'both'"
            )
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise ValueError("insert_fraction must lie in [0, 1]")
        if self.batches < 1 or self.batch_size < 1:
            raise ValueError("batches and batch_size must be positive")
        if self.min_side_size < 1:
            raise ValueError("min_side_size must be positive")


def generate_update_batches(
    workload: Workload, config: DynamicWorkloadConfig
) -> List[UpdateBatch]:
    """A reproducible insert/delete stream against a built workload.

    Inserts draw fresh points uniformly from the workload domain with oids
    above the existing ranges; deletes pick random currently-live oids.
    The generator tracks liveness across batches so every produced stream
    applies cleanly in order.
    """
    rng = random.Random(config.seed)
    live: Dict[str, Dict[int, Point]] = {
        "P": dict(enumerate(workload.points_p)),
        "Q": dict(enumerate(workload.points_q)),
    }
    taken = {
        side: {(p.x, p.y) for p in points.values()} for side, points in live.items()
    }
    next_oid = {side: max(live[side], default=-1) + 1 for side in ("P", "Q")}
    sides = ("P", "Q") if config.sides == "both" else (config.sides,)
    domain = workload.domain
    batches: List[UpdateBatch] = []
    for _ in range(config.batches):
        updates: List[Update] = []
        batch_deleted: Dict[str, set] = {"P": set(), "Q": set()}
        batch_inserted: Dict[str, set] = {"P": set(), "Q": set()}
        for _ in range(config.batch_size):
            side = rng.choice(sides)
            # A batch must not delete what it inserted (or deleted) itself:
            # batches are validated as atomic groups of distinct operations.
            deletable = [
                oid
                for oid in live[side]
                if oid not in batch_deleted[side] and oid not in batch_inserted[side]
            ]
            can_delete = len(live[side]) > config.min_side_size and deletable
            if rng.random() < config.insert_fraction or not can_delete:
                while True:
                    point = Point(
                        round(rng.uniform(domain.xmin, domain.xmax), 4),
                        round(rng.uniform(domain.ymin, domain.ymax), 4),
                    )
                    if (point.x, point.y) not in taken[side]:
                        break
                oid = next_oid[side]
                next_oid[side] += 1
                live[side][oid] = point
                taken[side].add((point.x, point.y))
                batch_inserted[side].add(oid)
                updates.append(Update("insert", side, oid, point))
            else:
                oid = rng.choice(sorted(deletable))
                point = live[side].pop(oid)
                taken[side].discard((point.x, point.y))
                batch_deleted[side].add(oid)
                updates.append(Update("delete", side, oid, point))
        batches.append(UpdateBatch(updates))
    return batches


def build_workload(
    config: Optional[WorkloadConfig] = None,
    points_p: Optional[Sequence[Point]] = None,
    points_q: Optional[Sequence[Point]] = None,
    bulk: bool = True,
) -> Workload:
    """Prepare a measured workload from a config and/or explicit pointsets."""
    config = config if config is not None else WorkloadConfig()
    if points_p is None:
        points_p = uniform_points(config.n_p, seed=config.seed)
    if points_q is None:
        points_q = uniform_points(config.n_q, seed=config.seed + 10_000)
    backend = config.storage if config.storage is not None else default_storage_backend()
    disk = DiskManager(
        page_size=config.page_size,
        storage=backend,
        storage_path=config.storage_path,
        fetch_latency=config.fetch_latency,
    )
    tree_p = build_indexed_pointset(disk, "RP", points_p, domain=config.domain, bulk=bulk)
    tree_q = build_indexed_pointset(disk, "RQ", points_q, domain=config.domain, bulk=bulk)
    workload = Workload(
        disk=disk,
        tree_p=tree_p,
        tree_q=tree_q,
        points_p=list(points_p),
        points_q=list(points_q),
        domain=config.domain,
    )
    workload.reset_measurement(buffer_fraction=config.buffer_fraction)
    return workload
