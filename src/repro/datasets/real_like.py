"""Seeded stand-ins for the paper's real geographic datasets.

Table I of the paper lists five datasets of U.S. geographic features from
the Board on Geographic Names (PP, SC, CE, LO, PA).  Those files cannot be
downloaded in this environment, so each dataset is replaced by a seeded
clustered synthetic dataset whose shape is chosen to echo the real one:

* populated places (PP) and schools (SC) are dense and strongly clustered
  around many urban centres,
* cemeteries (CE) and locales (LO) are moderately clustered with a larger
  uniform background component,
* parks (PA) is the smallest and most dispersed dataset.

Cardinalities are the paper's divided by a configurable ``scale`` factor
(default 20) so that the experiments run in a pure-Python implementation;
the ratios between datasets — which drive the join output sizes in Table III
— are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.datasets.synthetic import DOMAIN, clustered_points
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class RealDatasetSpec:
    """Shape parameters of one real-dataset stand-in."""

    name: str
    description: str
    paper_cardinality: int
    clusters: int
    cluster_spread: float
    uniform_fraction: float
    seed: int


#: Specifications mirroring Table I of the paper.
REAL_DATASET_SPECS: Dict[str, RealDatasetSpec] = {
    "PP": RealDatasetSpec(
        name="PP",
        description="Populated Places",
        paper_cardinality=177_983,
        clusters=60,
        cluster_spread=0.02,
        uniform_fraction=0.10,
        seed=101,
    ),
    "SC": RealDatasetSpec(
        name="SC",
        description="Schools",
        paper_cardinality=172_188,
        clusters=80,
        cluster_spread=0.015,
        uniform_fraction=0.08,
        seed=102,
    ),
    "CE": RealDatasetSpec(
        name="CE",
        description="Cemeteries",
        paper_cardinality=124_336,
        clusters=40,
        cluster_spread=0.03,
        uniform_fraction=0.20,
        seed=103,
    ),
    "LO": RealDatasetSpec(
        name="LO",
        description="Locales",
        paper_cardinality=128_476,
        clusters=35,
        cluster_spread=0.035,
        uniform_fraction=0.25,
        seed=104,
    ),
    "PA": RealDatasetSpec(
        name="PA",
        description="Parks",
        paper_cardinality=58_312,
        clusters=25,
        cluster_spread=0.05,
        uniform_fraction=0.35,
        seed=105,
    ),
}

#: Default down-scaling factor from the paper's cardinalities.
DEFAULT_SCALE = 100


def real_like_dataset(
    name: str, scale: int = DEFAULT_SCALE, domain: Rect = DOMAIN
) -> List[Point]:
    """Generate the stand-in for one of the paper's real datasets.

    Parameters
    ----------
    name:
        One of ``"PP"``, ``"SC"``, ``"CE"``, ``"LO"``, ``"PA"``.
    scale:
        Cardinality divisor relative to the paper (default 100, giving
        roughly 580–1780 points per dataset; use a smaller value for larger,
        slower experiments).
    domain:
        Target domain; the paper normalises everything to ``[0, 10000]``.
    """
    try:
        spec = REAL_DATASET_SPECS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(REAL_DATASET_SPECS))
        raise ValueError(f"unknown real dataset {name!r}; expected one of {known}") from None
    if scale < 1:
        raise ValueError("scale must be a positive integer")
    cardinality = max(16, spec.paper_cardinality // scale)
    return clustered_points(
        cardinality,
        clusters=spec.clusters,
        seed=spec.seed,
        domain=domain,
        cluster_spread=spec.cluster_spread,
        uniform_fraction=spec.uniform_fraction,
        skewed_cluster_sizes=True,
    )
