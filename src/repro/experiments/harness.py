"""Experiment harness: scales, the result container and the registry.

The registry maps experiment identifiers (``"fig5"``, ``"table3"``, …) to
driver functions.  Every driver accepts an :class:`ExperimentScale` so that
the same code serves the fast benchmark suite (``small``), exploratory runs
(``medium``) and a longer run that approaches the paper's relative settings
(``large``) — the absolute cardinalities always stay far below the paper's
100K–800K points, which a pure-Python implementation cannot join in
reasonable time (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.reporting import format_markdown_table, format_table


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that shrink or grow every experiment consistently.

    Attributes
    ----------
    name:
        ``"tiny"``, ``"small"``, ``"medium"`` or ``"large"``.
    base_cardinality:
        The default per-dataset cardinality ``n`` (the paper's default is
        100K; the reproduction defaults to 800 for the benchmark suite).
    sweep_cardinalities:
        Datasizes used where the paper sweeps 100K–800K (Figures 6, 8b, 10a,
        11a).
    single_cell_queries:
        Number of individual Voronoi-cell queries for Figure 5 (paper: 100).
    real_dataset_scale:
        Divisor applied to the real datasets' cardinalities (Table I).
    """

    name: str
    base_cardinality: int
    sweep_cardinalities: Sequence[int]
    single_cell_queries: int
    real_dataset_scale: int


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale("tiny", 150, (100, 200, 300), 20, 600),
    "small": ExperimentScale("small", 800, (400, 800, 1600, 2400), 100, 150),
    "medium": ExperimentScale("medium", 2000, (1000, 2000, 4000, 6000), 100, 60),
    "large": ExperimentScale("large", 5000, (2000, 5000, 10000, 20000), 100, 25),
}

DEFAULT_SCALE_NAME = "small"


def get_scale(name: Optional[str] = None) -> ExperimentScale:
    """Look up a scale by name (defaults to ``small``)."""
    key = (name or DEFAULT_SCALE_NAME).lower()
    try:
        return SCALES[key]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {key!r}; expected one of {known}") from None


@dataclass
class ExperimentResult:
    """Rows reproducing one paper artefact, plus provenance metadata."""

    experiment_id: str
    title: str
    paper_reference: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        row = list(values)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values but the table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        """Attach a free-form observation to the result."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Human-readable rendering used by the CLI and the benchmark logs."""
        header = f"== {self.experiment_id}: {self.title} ==\n({self.paper_reference})\n"
        body = format_table(self.columns, self.rows)
        notes = "".join(f"\nnote: {note}" for note in self.notes)
        return header + body + notes

    def to_markdown(self) -> str:
        """Markdown rendering used to refresh EXPERIMENTS.md."""
        header = f"### {self.experiment_id} — {self.title}\n\n*{self.paper_reference}*\n\n"
        body = format_markdown_table(self.columns, self.rows)
        notes = "".join(f"\n- {note}" for note in self.notes)
        return header + body + ("\n" + notes if notes else "")

    def column(self, name: str) -> List:
        """All values of one column (used by benchmark assertions)."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


DriverFn = Callable[[ExperimentScale], ExperimentResult]
_REGISTRY: Dict[str, DriverFn] = {}


def register(experiment_id: str) -> Callable[[DriverFn], DriverFn]:
    """Decorator adding a driver to the experiment registry."""

    def wrap(fn: DriverFn) -> DriverFn:
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def list_experiments() -> List[str]:
    """Identifiers of every registered experiment."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str, scale: Optional[str] = None) -> ExperimentResult:
    """Run one experiment by identifier at the given scale."""
    _ensure_loaded()
    try:
        driver = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown experiment {experiment_id!r}; expected one of {known}"
        ) from None
    return driver(get_scale(scale))


def _ensure_loaded() -> None:
    """Import driver modules lazily so registration side effects happen."""
    # Imported here (not at module import time) to avoid circular imports
    # between the harness and the drivers.
    from repro.experiments import drivers as _drivers  # noqa: F401
