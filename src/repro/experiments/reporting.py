"""Plain-text rendering of experiment results.

The paper's figures are line plots and bar charts; the reproduction reports
the same series as text tables so they can be diffed, logged by the
benchmark harness, and pasted into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_value(value) -> str:
    """Render one cell: floats get 3 significant decimals, the rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(columns: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(columns: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
    return "\n".join(lines)
