"""Experiment drivers that regenerate every table and figure of the paper.

Each driver builds its workload, runs the algorithms involved, and returns
an :class:`~repro.experiments.harness.ExperimentResult` whose rows mirror
the series plotted in the paper (page accesses, CPU time, false-hit ratios,
…).  The benchmark suite under ``benchmarks/`` and the CLI
(``python -m repro.cli``) both call these drivers; ``EXPERIMENTS.md`` records
their output next to the paper's reported numbers.

Sizes are controlled by :class:`~repro.experiments.harness.ExperimentScale`
because a pure-Python reimplementation cannot run the paper's 100K–800K
point joins in interactive time; the scale keeps the paper's ratios (page
capacity, buffer fraction, cardinality ratios) while shrinking cardinality.
"""

from repro.experiments.harness import ExperimentResult, ExperimentScale, list_experiments, run_experiment
from repro.experiments.reporting import format_table

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "run_experiment",
    "list_experiments",
    "format_table",
]
