"""Drivers for the NM-CIJ filter-quality experiments.

* ``fig10a`` / ``fig10b`` — false-hit ratio of the ConditionalFilter step
  against datasize and cardinality ratio.
* ``fig11a`` / ``fig11b`` — exact Voronoi cells of P computed with and
  without the REUSE buffer, against datasize and cardinality ratio.
"""

from __future__ import annotations

from repro.experiments.drivers.common import (
    ratio_cardinalities,
    run_cij,
    uniform_pair,
)
from repro.experiments.harness import ExperimentResult, ExperimentScale, register

_RATIOS = (("1:4", (1, 4)), ("1:2", (1, 2)), ("1:1", (1, 1)), ("2:1", (2, 1)), ("4:1", (4, 1)))


@register("fig10a")
def fig10a_false_hit_ratio_vs_datasize(scale: ExperimentScale) -> ExperimentResult:
    """Figure 10a: false-hit ratio of the filter step vs datasize."""
    result = ExperimentResult(
        experiment_id="fig10a",
        title="False-hit ratio of the NM-CIJ filter step vs datasize",
        paper_reference="Figure 10a, |P|=|Q|=n uniform",
        columns=["datasize", "candidates (Σ s_i)", "true hits (Σ s'_i)", "false hit ratio"],
    )
    for n in scale.sweep_cardinalities:
        points_p, points_q = uniform_pair(n, seed=10)
        run = run_cij("NM-CIJ", points_p, points_q)
        result.add_row(
            n,
            run.stats.filter_candidates,
            run.stats.filter_true_hits,
            run.stats.false_hit_ratio,
        )
    result.add_note("The paper reports FHR well below 0.1 and insensitive to datasize.")
    return result


@register("fig10b")
def fig10b_false_hit_ratio_vs_ratio(scale: ExperimentScale) -> ExperimentResult:
    """Figure 10b: false-hit ratio of the filter step vs cardinality ratio."""
    result = ExperimentResult(
        experiment_id="fig10b",
        title="False-hit ratio of the NM-CIJ filter step vs |Q|:|P|",
        paper_reference="Figure 10b, |P|+|Q| constant",
        columns=["ratio |Q|:|P|", "candidates (Σ s_i)", "true hits (Σ s'_i)", "false hit ratio"],
    )
    total = 2 * scale.base_cardinality
    for label, ratio in _RATIOS:
        n_p, n_q = ratio_cardinalities(total, ratio)
        points_p, points_q = uniform_pair(n_p, n_q, seed=10)
        run = run_cij("NM-CIJ", points_p, points_q)
        result.add_row(
            label,
            run.stats.filter_candidates,
            run.stats.filter_true_hits,
            run.stats.false_hit_ratio,
        )
    result.add_note(
        "FHR is largest for small |Q|:|P| (large P, many points near cell borders) "
        "but stays below ~0.1 in the paper."
    )
    return result


@register("fig11a")
def fig11a_reuse_vs_datasize(scale: ExperimentScale) -> ExperimentResult:
    """Figure 11a: cells of P computed, REUSE vs NO-REUSE, vs datasize."""
    result = ExperimentResult(
        experiment_id="fig11a",
        title="Exact Voronoi cells of P computed by NM-CIJ (REUSE vs NO-REUSE)",
        paper_reference="Figure 11a, |P|=|Q|=n uniform",
        columns=["datasize", "variant", "cells computed", "cells reused", "|P|"],
    )
    for n in scale.sweep_cardinalities:
        points_p, points_q = uniform_pair(n, seed=11)
        for variant, reuse in (("NO-REUSE", False), ("REUSE", True)):
            run = run_cij("NM-CIJ", points_p, points_q, reuse_cells=reuse)
            result.add_row(
                n, variant, run.stats.cells_computed_p, run.stats.cells_reused_p, len(points_p)
            )
    result.add_note(
        "REUSE should cut the redundant cell computations (the excess over |P|) "
        "by roughly half on average (paper Figure 11)."
    )
    return result


@register("fig11b")
def fig11b_reuse_vs_ratio(scale: ExperimentScale) -> ExperimentResult:
    """Figure 11b: cells of P computed, REUSE vs NO-REUSE, vs |Q|:|P|."""
    result = ExperimentResult(
        experiment_id="fig11b",
        title="Exact Voronoi cells of P computed by NM-CIJ vs cardinality ratio",
        paper_reference="Figure 11b, |P|+|Q| constant",
        columns=["ratio |Q|:|P|", "variant", "cells computed", "cells reused", "|P|"],
    )
    total = 2 * scale.base_cardinality
    for label, ratio in _RATIOS:
        n_p, n_q = ratio_cardinalities(total, ratio)
        points_p, points_q = uniform_pair(n_p, n_q, seed=11)
        for variant, reuse in (("NO-REUSE", False), ("REUSE", True)):
            run = run_cij("NM-CIJ", points_p, points_q, reuse_cells=reuse)
            result.add_row(
                label, variant, run.stats.cells_computed_p, run.stats.cells_reused_p, len(points_p)
            )
    result.add_note("The relative benefit of REUSE is insensitive to the ratio.")
    return result
