"""Drivers for the CIJ-computation experiments (Section V-B).

* ``fig7``   — MAT/JOIN cost breakdown of FM-CIJ, PM-CIJ and NM-CIJ.
* ``fig8a``  — effect of the LRU buffer size.
* ``fig8b``  — scalability with the datasize.
* ``fig9a``  — effect of the cardinality ratio |Q|:|P|.
* ``fig9b``  — output progressiveness (pairs produced vs page accesses).
* ``table3`` — result size and page accesses on real dataset pairs.
"""

from __future__ import annotations

from repro.datasets.real_like import real_like_dataset
from repro.experiments.drivers.common import (
    CIJ_ALGORITHMS,
    lower_bound_for,
    ratio_cardinalities,
    run_cij,
    uniform_pair,
)
from repro.experiments.harness import ExperimentResult, ExperimentScale, register


@register("fig7")
def fig7_cost_breakdown(scale: ExperimentScale) -> ExperimentResult:
    """Figure 7: I/O and CPU broken into materialisation and join phases."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="Cost breakdown (MAT vs JOIN) of the three CIJ algorithms",
        paper_reference="Figure 7, |P|=|Q| uniform, 2% buffer",
        columns=[
            "algorithm",
            "MAT pages",
            "JOIN pages",
            "total pages",
            "MAT CPU (s)",
            "JOIN CPU (s)",
            "result pairs",
            "CPU ops",
        ],
    )
    points_p, points_q = uniform_pair(scale.base_cardinality, seed=7)
    for compute in ("scalar", "kernel"):
        for name in CIJ_ALGORITHMS:
            run = run_cij(name, points_p, points_q, compute=compute)
            # Deterministic CPU proxy: every heap pop, Lemma-1 clip and
            # point examination of the Voronoi and filter phases.
            # Wall-clock CPU is kept for information but is
            # load-dependent, so the benchmark asserts the paper's "NM is
            # the most CPU-intensive" claim on this counter instead.
            cpu_ops = (
                run.cell_stats.heap_pops
                + run.cell_stats.refinements
                + run.cell_stats.points_examined
                + run.filter_stats.heap_pops
                + run.filter_stats.points_examined
            )
            label = name if compute == "scalar" else f"{name}/kernel"
            result.add_row(
                label,
                run.stats.mat_page_accesses,
                run.stats.join_page_accesses,
                run.stats.total_page_accesses,
                run.stats.mat_cpu_seconds,
                run.stats.join_cpu_seconds,
                len(run.pairs),
                cpu_ops,
            )
    result.add_note(
        "NM-CIJ pays no materialisation I/O; its total should be well below "
        "PM-CIJ, which in turn is below FM-CIJ (paper Figure 7a)."
    )
    result.add_note(
        "NM-CIJ's CPU cost is the highest of the three (extra filter-phase "
        "work); in this pure-Python implementation the wall-clock gap is "
        "larger than the paper's 10-20% because the filter arithmetic is "
        "interpreted."
    )
    result.add_note(
        "The */kernel rows run compute='kernel' (NumPy inner loops): every "
        "deterministic column — pages, pairs, CPU ops — must match the "
        "scalar row exactly, because the kernels are bit-identical by "
        "contract; only the wall-clock CPU columns may differ.  End to "
        "end the kernel mode is parity within measurement noise on this "
        "workload: the bit-identity contract pins the exact clip/prune "
        "sequence, so the kernels can only make each decision cheaper, "
        "not skip any — and on the ~6-vertex rings the sequence produces, "
        "NumPy's per-call dispatch gives back most of what the batched "
        "arithmetic wins (isolated inner loops measure up to ~2x)."
    )
    return result


@register("fig8a")
def fig8a_buffer_effect(scale: ExperimentScale) -> ExperimentResult:
    """Figure 8a: page accesses as a function of the LRU buffer size."""
    result = ExperimentResult(
        experiment_id="fig8a",
        title="Effect of the LRU buffer size on page accesses",
        paper_reference="Figure 8a, |P|=|Q| uniform, buffer 0-10% of data size",
        columns=["buffer %", "algorithm", "page accesses"],
    )
    points_p, points_q = uniform_pair(scale.base_cardinality, seed=8)
    lb = lower_bound_for(points_p, points_q)
    for fraction in (0.0, 0.01, 0.02, 0.05, 0.10):
        for name in CIJ_ALGORITHMS:
            run = run_cij(name, points_p, points_q, buffer_fraction=fraction)
            result.add_row(100 * fraction, name, run.stats.total_page_accesses)
        result.add_row(100 * fraction, "LB", lb)
    result.add_note(
        "All methods improve with a larger buffer; NM-CIJ converges towards LB "
        "(paper: only ~30% above LB at a 2% buffer)."
    )
    return result


@register("fig8b")
def fig8b_scalability(scale: ExperimentScale) -> ExperimentResult:
    """Figure 8b: page accesses as a function of the datasize."""
    result = ExperimentResult(
        experiment_id="fig8b",
        title="Scalability with the datasize (|P| = |Q| = n)",
        paper_reference="Figure 8b, uniform data, 2% buffer",
        columns=["datasize", "algorithm", "page accesses"],
    )
    for n in scale.sweep_cardinalities:
        points_p, points_q = uniform_pair(n, seed=8)
        for name in CIJ_ALGORITHMS:
            run = run_cij(name, points_p, points_q)
            result.add_row(n, name, run.stats.total_page_accesses)
        result.add_row(n, "LB", lower_bound_for(points_p, points_q))
    result.add_note("All methods scale roughly linearly; NM-CIJ stays closest to LB.")
    return result


@register("fig9a")
def fig9a_cardinality_ratio(scale: ExperimentScale) -> ExperimentResult:
    """Figure 9a: page accesses as a function of the cardinality ratio."""
    result = ExperimentResult(
        experiment_id="fig9a",
        title="Effect of the cardinality ratio |Q|:|P| (constant |P|+|Q|)",
        paper_reference="Figure 9a, |P|+|Q| constant (paper: 200K)",
        columns=["ratio |Q|:|P|", "algorithm", "page accesses"],
    )
    total = 2 * scale.base_cardinality
    for label, ratio in (("1:4", (1, 4)), ("1:2", (1, 2)), ("1:1", (1, 1)), ("2:1", (2, 1)), ("4:1", (4, 1))):
        n_p, n_q = ratio_cardinalities(total, ratio)
        points_p, points_q = uniform_pair(n_p, n_q, seed=9)
        for name in CIJ_ALGORITHMS:
            run = run_cij(name, points_p, points_q)
            result.add_row(label, name, run.stats.total_page_accesses)
        result.add_row(label, "LB", lower_bound_for(points_p, points_q))
    result.add_note(
        "PM-CIJ benefits from a smaller |P| (fewer cells to materialise); FM-CIJ "
        "is insensitive to the ratio; NM-CIJ remains the cheapest throughout."
    )
    return result


@register("fig9b")
def fig9b_output_progress(scale: ExperimentScale) -> ExperimentResult:
    """Figure 9b: result pairs produced as a function of current I/O."""
    result = ExperimentResult(
        experiment_id="fig9b",
        title="Output progressiveness (result pairs vs page accesses)",
        paper_reference="Figure 9b, |P|=|Q| uniform, 2% buffer",
        columns=["algorithm", "page accesses", "result pairs"],
    )
    points_p, points_q = uniform_pair(scale.base_cardinality, seed=9)
    for name in CIJ_ALGORITHMS:
        run = run_cij(name, points_p, points_q)
        samples = run.stats.progress
        # Downsample to at most 12 rows per algorithm to keep the table small.
        step = max(1, len(samples) // 12)
        kept = samples[::step]
        if samples and kept[-1] != samples[-1]:
            kept.append(samples[-1])
        for sample in kept:
            result.add_row(name, sample.page_accesses, sample.pairs_reported)
    result.add_note(
        "FM-CIJ and PM-CIJ report nothing until their Voronoi R-trees exist "
        "(blocking); NM-CIJ produces pairs from the first few page accesses."
    )
    return result


@register("table3")
def table3_real_dataset_joins(scale: ExperimentScale) -> ExperimentResult:
    """Table III: output size and page accesses on real dataset pairs."""
    result = ExperimentResult(
        experiment_id="table3",
        title="CIJ on real dataset pairs (stand-ins): result size and I/O",
        paper_reference="Table III; Q joined with P, 2% buffer",
        columns=[
            "Q",
            "P",
            "|Q|",
            "|P|",
            "CIJ pairs",
            "FM-CIJ pages",
            "PM-CIJ pages",
            "NM-CIJ pages",
        ],
    )
    pairs = [("SC", "PP"), ("CE", "LO"), ("CE", "SC"), ("LO", "PP"), ("PA", "SC"), ("PA", "PP")]
    for q_name, p_name in pairs:
        points_q = real_like_dataset(q_name, scale=scale.real_dataset_scale)
        points_p = real_like_dataset(p_name, scale=scale.real_dataset_scale)
        accesses = {}
        pair_count = 0
        for name in CIJ_ALGORITHMS:
            run = run_cij(name, points_p, points_q)
            accesses[name] = run.stats.total_page_accesses
            pair_count = len(run.pairs)
        result.add_row(
            q_name,
            p_name,
            len(points_q),
            len(points_p),
            pair_count,
            accesses["FM-CIJ"],
            accesses["PM-CIJ"],
            accesses["NM-CIJ"],
        )
    result.add_note(
        "Expected ordering on every pair: NM-CIJ < PM-CIJ < FM-CIJ page accesses; "
        "the output size is comparable to the input size (paper Table III)."
    )
    return result
