"""Experiment driver modules (imported for their registration side effects)."""

from repro.experiments.drivers import (  # noqa: F401
    ablation_experiments,
    cij_experiments,
    filter_experiments,
    voronoi_experiments,
)
