"""Ablation experiments beyond the paper's main line.

These quantify design choices the paper asserts but does not plot:

* ``ablation_visit_order`` — BF-VOR's best-first visit order vs a plain
  depth-first order (the paper argues best-first "makes it more likely to
  discover early points near p_i").
* ``ablation_phi``        — NM-CIJ with and without the Lemma-3 Φ pruning of
  non-leaf entries in the ConditionalFilter.
* ``ablation_batch``      — BatchVoronoi vs per-point BF-VOR for the cells
  of one leaf (the motivation for Algorithm 2).
"""

from __future__ import annotations

import random
import time

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.experiments.drivers.common import run_cij, uniform_pair
from repro.experiments.harness import ExperimentResult, ExperimentScale, register
from repro.storage.disk import DiskManager
from repro.voronoi.batch import compute_cells_for_leaf
from repro.voronoi.single import compute_voronoi_cell


@register("ablation_visit_order")
def ablation_visit_order(scale: ExperimentScale) -> ExperimentResult:
    """Best-first vs depth-first entry ordering inside BF-VOR."""
    result = ExperimentResult(
        experiment_id="ablation_visit_order",
        title="BF-VOR visit order ablation (best-first vs depth-first)",
        paper_reference="Section III-A design choice (not plotted in the paper)",
        columns=["visit order", "queries", "mean node accesses", "mean CPU (ms)"],
    )
    points = uniform_points(scale.base_cardinality, seed=20)
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    rng = random.Random(7)
    query_ids = rng.sample(range(len(points)), min(scale.single_cell_queries, len(points)))
    for order in ("best-first", "depth-first"):
        accesses = []
        cpu = []
        for oid in query_ids:
            disk.buffer.clear()
            disk.reset_counters()
            start = time.perf_counter()
            compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid, visit_order=order)
            cpu.append(time.perf_counter() - start)
            accesses.append(disk.counters.reads)
        result.add_row(
            order, len(query_ids), sum(accesses) / len(accesses), 1000 * sum(cpu) / len(cpu)
        )
    result.add_note(
        "Both orders return the exact cell; best-first tightens the cell early "
        "so Lemma-2 pruning kicks in sooner and fewer nodes are expanded."
    )
    return result


@register("ablation_phi")
def ablation_phi_pruning(scale: ExperimentScale) -> ExperimentResult:
    """NM-CIJ with the Lemma-3 Φ pruning rule enabled vs disabled."""
    result = ExperimentResult(
        experiment_id="ablation_phi",
        title="NM-CIJ filter ablation: Lemma-3 Φ pruning on vs off",
        paper_reference="Section IV-A pruning rule (not plotted in the paper)",
        columns=["variant", "page accesses", "result pairs", "CPU (s)"],
    )
    points_p, points_q = uniform_pair(scale.base_cardinality, seed=21)
    for variant, use_phi in (("with Φ pruning", True), ("without Φ pruning", False)):
        run = run_cij("NM-CIJ", points_p, points_q, use_phi_pruning=use_phi)
        result.add_row(
            variant,
            run.stats.total_page_accesses,
            len(run.pairs),
            run.stats.total_cpu_seconds,
        )
    result.add_note(
        "Disabling the rule never changes the result but forces the filter to "
        "expand every subtree it meets, inflating page accesses."
    )
    return result


@register("ablation_batch")
def ablation_batch_vs_single(scale: ExperimentScale) -> ExperimentResult:
    """BatchVoronoi vs repeated single-cell computation for one leaf node."""
    result = ExperimentResult(
        experiment_id="ablation_batch",
        title="Cells of one leaf: BatchVoronoi vs per-point BF-VOR",
        paper_reference="Motivation for Algorithm 2 (Section III-B)",
        columns=["method", "leaves sampled", "mean node accesses per leaf", "mean CPU per leaf (ms)"],
    )
    points = uniform_points(scale.base_cardinality, seed=22)
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    leaves = list(tree.iter_leaf_nodes(order="hilbert"))
    rng = random.Random(3)
    sample = rng.sample(leaves, min(10, len(leaves)))
    for method in ("BATCH", "SINGLE"):
        accesses = []
        cpu = []
        for leaf in sample:
            disk.buffer.clear()
            disk.reset_counters()
            start = time.perf_counter()
            if method == "BATCH":
                compute_cells_for_leaf(tree, leaf.entries, DOMAIN)
            else:
                for entry in leaf.entries:
                    compute_voronoi_cell(tree, entry.payload, DOMAIN, site_oid=entry.oid)
            cpu.append(time.perf_counter() - start)
            accesses.append(disk.counters.reads)
        result.add_row(
            method, len(sample), sum(accesses) / len(accesses), 1000 * sum(cpu) / len(cpu)
        )
    result.add_note(
        "BatchVoronoi reads the shared neighbourhood once instead of once per "
        "point, so both I/O and CPU per leaf drop."
    )
    return result
