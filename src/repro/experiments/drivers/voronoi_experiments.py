"""Drivers for the Voronoi-cell-computation experiments (Section V-A).

* ``fig5``  — BF-VOR vs TP-VOR cost of individual cell queries.
* ``fig6``  — ITER vs BATCH vs LB for full diagram construction vs datasize.
* ``table2`` — BatchVoronoi on the (stand-in) real datasets.
"""

from __future__ import annotations

import random
import time

from repro.datasets.real_like import REAL_DATASET_SPECS, real_like_dataset
from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.experiments.drivers.common import DEFAULT_BUFFER_FRACTION
from repro.experiments.harness import ExperimentResult, ExperimentScale, register
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import compute_voronoi_diagram
from repro.voronoi.single import CellComputationStats, compute_voronoi_cell
from repro.voronoi.tpvor import compute_voronoi_cell_tpvor


def _indexed_uniform(n: int, seed: int = 0, buffer_fraction: float = DEFAULT_BUFFER_FRACTION):
    """A uniform dataset indexed on a fresh disk, ready for measurement."""
    points = uniform_points(n, seed=seed)
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    disk.set_buffer_fraction(buffer_fraction)
    disk.reset_counters()
    return points, disk, tree


@register("fig5")
def fig5_single_cell_queries(scale: ExperimentScale) -> ExperimentResult:
    """Figure 5: node accesses and CPU of individual Voronoi-cell queries."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Cost of individual Voronoi cell queries (BF-VOR vs TP-VOR)",
        paper_reference="Figure 5, uniform data, n=100K in the paper",
        columns=[
            "method",
            "queries",
            "mean node accesses",
            "max node accesses",
            "mean CPU (ms)",
            "total node accesses",
        ],
    )
    points, disk, tree = _indexed_uniform(scale.base_cardinality, seed=5)
    rng = random.Random(42)
    query_ids = rng.sample(range(len(points)), min(scale.single_cell_queries, len(points)))

    for name, method in (("TP-VOR", "tpvor"), ("BF-VOR", "bfvor")):
        accesses = []
        cpu = []
        for oid in query_ids:
            disk.buffer.clear()
            before = disk.counters.snapshot()
            start = time.perf_counter()
            if method == "bfvor":
                compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            else:
                compute_voronoi_cell_tpvor(tree, points[oid], DOMAIN, site_oid=oid)
            cpu.append(time.perf_counter() - start)
            accesses.append(disk.counters.diff(before).reads)
        result.add_row(
            name,
            len(query_ids),
            sum(accesses) / len(accesses),
            max(accesses),
            1000.0 * sum(cpu) / len(cpu),
            sum(accesses),
        )
    bf_total = result.rows[1][5]
    tp_total = result.rows[0][5]
    result.add_note(
        f"BF-VOR performs {tp_total / max(1, bf_total):.2f}x fewer node accesses than "
        "TP-VOR in total (paper: BF-VOR lower and more stable across queries)."
    )
    return result


@register("fig6")
def fig6_diagram_scaling(scale: ExperimentScale) -> ExperimentResult:
    """Figure 6: Voronoi diagram construction cost as a function of datasize."""
    result = ExperimentResult(
        experiment_id="fig6",
        title="Voronoi diagram computation: ITER vs BATCH vs LB",
        paper_reference="Figure 6, uniform data, datasize swept (paper: 100K-800K)",
        columns=["datasize", "method", "page accesses", "heap pops", "clip ops", "CPU (s)"],
    )
    for n in scale.sweep_cardinalities:
        for name in ("ITER", "BATCH", "LB"):
            points, disk, tree = _indexed_uniform(n, seed=6)
            if name == "LB":
                result.add_row(n, name, tree.node_count(), 0, 0, 0.0)
                continue
            stats = CellComputationStats()
            start = time.perf_counter()
            compute_voronoi_diagram(
                tree,
                DOMAIN,
                strategy="batch" if name == "BATCH" else "iter",
                stats=stats,
            )
            elapsed = time.perf_counter() - start
            result.add_row(
                n, name, disk.counters.reads, stats.heap_pops, stats.refinements, elapsed
            )
    result.add_note(
        "ITER and BATCH should track LB closely in I/O; BATCH should win on CPU "
        "increasingly with datasize (paper Figure 6b).  Heap pops and clip "
        "operations are the deterministic CPU proxies the benchmark asserts on."
    )
    return result


@register("table2")
def table2_batch_on_real_datasets(scale: ExperimentScale) -> ExperimentResult:
    """Table II: BatchVoronoi performance on the real-dataset stand-ins."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Performance of BatchVoronoi on real datasets (stand-ins)",
        paper_reference="Table II; real USGS datasets replaced by seeded stand-ins",
        columns=["dataset", "cardinality", "page accesses", "CPU (s)", "LB pages"],
    )
    for name in REAL_DATASET_SPECS:
        points = real_like_dataset(name, scale=scale.real_dataset_scale)
        disk = DiskManager()
        tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
        disk.set_buffer_fraction(DEFAULT_BUFFER_FRACTION)
        disk.reset_counters()
        start = time.perf_counter()
        compute_voronoi_diagram(tree, DOMAIN, strategy="batch")
        elapsed = time.perf_counter() - start
        result.add_row(name, len(points), disk.counters.reads, elapsed, tree.node_count())
    result.add_note(
        "Page accesses vary between datasets of similar size when adjacent cell "
        "areas are skewed, but stay within a small factor of LB (paper Table II)."
    )
    return result
