"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import Workload, WorkloadConfig, build_workload
from repro.engine import default_engine
from repro.geometry.point import Point
from repro.join.lower_bound import lower_bound_io
from repro.join.result import CIJResult

#: Default LRU buffer size as a fraction of the data size (paper: 2 %).
DEFAULT_BUFFER_FRACTION = 0.02

#: The three CIJ algorithms in the order the paper's plots list them,
#: mapped to their engine registry identifiers.
CIJ_ALGORITHMS: Dict[str, str] = {
    "FM-CIJ": "fm",
    "PM-CIJ": "pm",
    "NM-CIJ": "nm",
}


def fresh_workload(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
    seed: int = 0,
    storage: Optional[str] = None,
    storage_path: Optional[str] = None,
    fetch_latency: float = 0.0,
) -> Workload:
    """A brand-new workload (fresh disk, fresh trees) for one measured run.

    Each algorithm run gets its own workload so that pages materialised by a
    previous run never pollute the buffer sizing or the counters of the next.
    ``storage`` selects the page-store backend (``None`` honours
    ``$REPRO_STORAGE``, then memory), so every experiment can be replayed
    against file- or SQLite-backed pages unchanged; ``fetch_latency`` is the
    simulated per-page disk service time (for stall/overlap measurements).
    """
    config = WorkloadConfig(
        seed=seed,
        buffer_fraction=buffer_fraction,
        storage=storage,
        storage_path=storage_path,
        fetch_latency=fetch_latency,
    )
    return build_workload(config, points_p=points_p, points_q=points_q)


def run_cij(
    algorithm_name: str,
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
    storage: Optional[str] = None,
    storage_path: Optional[str] = None,
    fetch_latency: float = 0.0,
    **engine_overrides,
) -> CIJResult:
    """Run one CIJ algorithm on a fresh workload through the join engine.

    ``engine_overrides`` are :class:`repro.engine.EngineConfig` fields
    (``reuse_cells``, ``use_phi_pruning``, ``executor``, ``workers``,
    ``prefetch``, ...), so every experiment measures the same code path
    applications use.  The workload's backend resources are released once
    the result is in hand.
    """
    algorithm = CIJ_ALGORITHMS.get(algorithm_name, algorithm_name)
    workload = fresh_workload(
        points_p,
        points_q,
        buffer_fraction=buffer_fraction,
        storage=storage,
        storage_path=storage_path,
        fetch_latency=fetch_latency,
    )
    try:
        return default_engine().run(
            algorithm,
            workload.tree_p,
            workload.tree_q,
            domain=workload.domain,
            storage=storage,
            storage_path=storage_path,
            **engine_overrides,
        )
    finally:
        workload.close()


def lower_bound_for(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
) -> int:
    """The LB line: pages of both source trees (independent of the buffer)."""
    with fresh_workload(points_p, points_q) as workload:
        return lower_bound_io(workload.tree_p, workload.tree_q)


def uniform_pair(
    n_p: int, n_q: Optional[int] = None, seed: int = 0
) -> Tuple[List[Point], List[Point]]:
    """Two independent uniform pointsets over the paper's domain."""
    n_q = n_q if n_q is not None else n_p
    return (
        uniform_points(n_p, seed=seed),
        uniform_points(n_q, seed=seed + 10_000),
    )


def ratio_cardinalities(total: int, ratio_q_to_p: Tuple[int, int]) -> Tuple[int, int]:
    """Split ``total`` points between Q and P according to a ``|Q|:|P|`` ratio."""
    q_share, p_share = ratio_q_to_p
    n_q = total * q_share // (q_share + p_share)
    n_p = total - n_q
    return n_p, n_q
