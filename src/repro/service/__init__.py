"""A long-running concurrent join service over the persistent backends.

ROADMAP item 2: the one-shot CLI becomes a server.  A
:class:`~repro.service.server.JoinService` owns one warm
:class:`~repro.dynamic.DynamicJoinSession` per dataset and serves
concurrent clients over a newline-delimited JSON protocol — ``join``
(the full maintained pair set), ``window`` (region-restricted join via a
ConditionalFilter sub-rectangle descent), ``update`` (a batch through
the delta-CIJ path, streamed to subscribers), and ``stats``.

Concurrency story (see :mod:`repro.service.server` for details): every
mutation and every tree-reading query of a dataset runs on that
dataset's single worker thread behind a bounded admission queue, while
``join``/``stats`` are answered on the event loop from an immutable
published snapshot — readers never wait on the writer, and every
response is byte-reproducible from the request's recorded version.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    canonical_json,
    decode_line,
    encode_line,
    pairs_payload,
)
from repro.service.server import DatasetSpec, JoinService

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceError",
    "canonical_json",
    "decode_line",
    "encode_line",
    "pairs_payload",
    "DatasetSpec",
    "JoinService",
    "ServiceClient",
]
