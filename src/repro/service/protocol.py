"""Wire protocol of the join service: newline-delimited canonical JSON.

One request per line, one response per line, plus asynchronous ``event``
lines for subscribers.  Every line the server emits is *canonical* JSON —
sorted keys, no whitespace — so a response is a deterministic function of
its content: the differential suite replays a recorded request order
against a fresh serial session and compares the raw bytes.

Requests
--------
``{"op": "join", "dataset": "d", "id": 7}``
    The full maintained pair set (served from the current snapshot).
``{"op": "window", "dataset": "d", "window": [x0, y0, x1, y1]}``
    Pairs whose common influence region meets the window with positive
    area (a ConditionalFilter sub-rectangle descent on the worker).
``{"op": "update", "dataset": "d", "updates": ["insert P 7 1.0 2.0", ...]}``
    One batch in the :mod:`repro.dynamic.updates` line format, applied
    through the delta-CIJ path; the response carries the pair delta.
``{"op": "stats", "dataset": "d"}``
    Accumulated :class:`~repro.dynamic.updates.UpdateStats` plus the
    disk's ``storage_stats()`` counters.
``{"op": "subscribe", "dataset": "d"}``
    Register this connection for ``delta`` events on every update.

``id`` is optional and echoed verbatim; clients use it to match
pipelined responses.

Responses
---------
``{"ok": true, "op": ..., "version": N, ...}`` on success.  ``version``
is the dataset's update-batch count at the moment the answer was
computed — the replay key.  Failures are loud and structured::

    {"ok": false, "error": {"code": "overloaded", "message": "..."}}

Error codes: ``bad_request``, ``unknown_dataset``, ``update_rejected``,
``overloaded``, ``internal``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Bumped on incompatible wire changes; echoed in every ``hello`` event.
PROTOCOL_VERSION = 1

#: Ops a request may carry.
REQUEST_OPS = ("join", "window", "update", "stats", "subscribe")

#: The maximum accepted request line (bytes).  A batch of ~30 bytes per
#: update line makes this tens of thousands of updates — far beyond what
#: one delta-CIJ batch is for — while bounding a hostile client's memory.
MAX_LINE_BYTES = 1 << 20


class ServiceError(Exception):
    """A structured, client-visible failure."""

    def __init__(self, message: str, code: str = "internal"):
        super().__init__(message)
        self.code = code


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, pure ASCII."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def encode_line(payload: Any) -> bytes:
    """One canonical wire line, newline-terminated."""
    return canonical_json(payload).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line into a JSON object (dict)."""
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(
            f"request line exceeds {MAX_LINE_BYTES} bytes", code="bad_request"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"not valid JSON: {error}", code="bad_request") from None
    if not isinstance(payload, dict):
        raise ServiceError(
            f"a request must be a JSON object, got {type(payload).__name__}",
            code="bad_request",
        )
    return payload


def pairs_payload(pairs: Iterable[Tuple[int, int]]) -> List[List[int]]:
    """The canonical wire form of a pair set: sorted ``[p, q]`` lists."""
    return [[p, q] for p, q in sorted(pairs)]


def ok_response(
    op: str, request_id: Optional[Any], body: Dict[str, Any]
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "op": op}
    if request_id is not None:
        response["id"] = request_id
    response.update(body)
    return response


def error_response(
    request_id: Optional[Any], code: str, message: str
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response
