"""The asyncio join server: warm sessions, snapshot reads, serial writes.

Concurrency design
------------------
Python-side structures (`DiskManager`'s LRU, SQLite's default
connection, the session's maintained diagrams) are not thread-safe, so
the server never lets two operations touch a dataset's mutable state at
once:

* **One worker thread per dataset** executes every tree-touching
  operation — ``update`` batches *and* ``window`` descents — in strict
  admission order.  The thread *is* the per-dataset writer lock: batches
  serialize by construction, and a window query observes exactly the
  version it reports.
* **Snapshot reads.**  After every batch the worker publishes an
  immutable :class:`Snapshot` (version, canonical pair payload,
  accumulated update stats); ``join`` and ``stats`` are answered on the
  event loop from whatever snapshot is current — the MVCC seed from the
  file store's new-slot-then-invalidate updates, lifted to the session
  layer: readers never block on the writer and always see a complete
  version, never a half-applied batch.
* **Admission control.**  Each dataset bounds its queued-plus-running
  worker operations; past the bound the server answers immediately with
  a structured ``overloaded`` rejection instead of buffering without
  limit or silently dropping.

Every response carries the ``version`` it was computed at, which is the
replay key of the differential suite: a fresh serial session that
applies the same batches in version order reproduces every served
``join``/``window``/``update`` payload byte for byte.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.workload import WorkloadConfig, Workload, build_workload
from repro.dynamic.maintenance import DynamicJoinSession
from repro.dynamic.updates import UpdateStreamError, parse_update_stream
from repro.geometry.rect import Rect
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REQUEST_OPS,
    ServiceError,
    encode_line,
    error_response,
    decode_line,
    ok_response,
    pairs_payload,
)


@dataclass(frozen=True)
class DatasetSpec:
    """What the server builds one warm dataset from."""

    name: str = "default"
    n_p: int = 200
    n_q: int = 200
    seed: int = 0
    storage: Optional[str] = None
    storage_path: Optional[str] = None
    #: Maximum queued-plus-running worker operations before ``window``/
    #: ``update`` requests are rejected as ``overloaded``.
    max_queue: int = 32


class Snapshot:
    """An immutable published view of one dataset version."""

    __slots__ = ("version", "pairs", "update_stats", "points_p", "points_q", "storage")

    def __init__(
        self,
        version: int,
        pairs: List[List[int]],
        update_stats: Dict[str, int],
        points_p: int,
        points_q: int,
        storage: Dict[str, Any],
    ):
        self.version = version
        self.pairs = pairs
        self.update_stats = update_stats
        self.points_p = points_p
        self.points_q = points_q
        self.storage = storage


class DatasetState:
    """One warm dataset: workload + session + worker + published snapshot.

    Every operation that touches the workload — the bootstrap build,
    window descents, update batches, and the final close — runs on this
    dataset's single worker thread.  That is not just the writer lock:
    SQLite connections are bound to the thread that created them, so the
    backend handles must live and die on the worker.
    """

    def __init__(self, spec: DatasetSpec):
        from concurrent.futures import ThreadPoolExecutor

        self.spec = spec
        self.workload: Optional[Workload] = None
        self.session: Optional[DynamicJoinSession] = None
        #: Update-batch count; written only on the worker thread.
        self.version = 0
        self.snapshot: Optional[Snapshot] = None
        #: Queued-plus-running worker operations; touched only on the
        #: event loop thread, so a plain integer is race-free.
        self.pending = 0
        self.subscribers: Set[asyncio.StreamWriter] = set()
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-svc-{spec.name}"
        )

    # -- worker-thread operations --------------------------------------
    def build(self) -> None:
        """Bootstrap the workload and warm session (worker thread)."""
        spec = self.spec
        self.workload = build_workload(
            WorkloadConfig(
                n_p=spec.n_p,
                n_q=spec.n_q,
                seed=spec.seed,
                storage=spec.storage,
                storage_path=spec.storage_path,
            )
        )
        self.session = DynamicJoinSession(
            self.workload.tree_p, self.workload.tree_q, domain=self.workload.domain
        )
        self.snapshot = self._build_snapshot()

    def _build_snapshot(self) -> Snapshot:
        session = self.session
        return Snapshot(
            version=self.version,
            pairs=pairs_payload(session.pairs),
            update_stats=asdict(session.stats),
            points_p=session.point_count("P"),
            points_q=session.point_count("Q"),
            storage=asdict(self.workload.disk.storage_stats()),
        )

    def _apply_batch(self, batch) -> Dict[str, Any]:
        delta = self.session.apply_updates(batch)
        self.version += 1
        body = {
            "version": self.version,
            "added": pairs_payload(delta.added),
            "removed": pairs_payload(delta.removed),
            "batch_stats": asdict(delta.stats),
        }
        # Publication is one reference assignment: loop-side readers see
        # either the old complete snapshot or the new one, never a mix.
        self.snapshot = self._build_snapshot()
        return body

    def _window_query(self, window: Rect) -> Dict[str, Any]:
        pairs = self.session.window_pairs(window)
        return {
            "version": self.version,
            "window": [window.xmin, window.ymin, window.xmax, window.ymax],
            "pairs": pairs_payload(pairs),
        }

    # -- event-loop-side API -------------------------------------------
    async def submit(self, fn):
        """Run ``fn`` on the dataset's worker under admission control."""
        if self.pending >= self.spec.max_queue:
            raise ServiceError(
                f"dataset {self.spec.name!r} has {self.pending} operations "
                f"queued (limit {self.spec.max_queue}); retry later",
                code="overloaded",
            )
        loop = asyncio.get_running_loop()
        self.pending += 1
        future = loop.run_in_executor(self._worker, fn)
        # The decrement runs on the loop (asyncio future callbacks do),
        # matching the loop-side increment.
        future.add_done_callback(lambda _f: self._release())
        return await future

    def _release(self) -> None:
        self.pending -= 1

    def stats_body(self) -> Dict[str, Any]:
        snapshot = self.snapshot
        return {
            "version": snapshot.version,
            "pairs": len(snapshot.pairs),
            "points": {"P": snapshot.points_p, "Q": snapshot.points_q},
            "update_stats": snapshot.update_stats,
            # Storage counters as of the snapshot's publication — read on
            # the worker like every other backend access.
            "storage": snapshot.storage,
        }

    def close(self) -> None:
        try:
            self._worker.submit(self._close_resources).result()
        except RuntimeError:
            pass  # executor already shut down (double close)
        self._worker.shutdown(wait=True, cancel_futures=True)
        self.subscribers.clear()

    def _close_resources(self) -> None:
        """Release session and backend handles (worker thread)."""
        if self.session is not None:
            self.session.close()
            self.session = None
        if self.workload is not None:
            self.workload.close()
            self.workload = None


class JoinService:
    """The TCP server; one instance owns every dataset it serves."""

    def __init__(self, specs: Sequence[DatasetSpec]):
        if not specs:
            raise ValueError("a JoinService needs at least one dataset")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dataset names: {names}")
        self._specs = list(specs)
        self.datasets: Dict[str, DatasetState] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Build the datasets, bind, and return the bound ``(host, port)``."""
        loop = asyncio.get_running_loop()
        try:
            for spec in self._specs:
                # Each bootstrap runs on its dataset's own worker thread:
                # it must not stall the loop, and the SQLite backend binds
                # its connection to the creating thread, so the build has
                # to happen where every later operation will.
                state = DatasetState(spec)
                self.datasets[spec.name] = state
                await loop.run_in_executor(state._worker, state.build)
        except BaseException:
            for state in self.datasets.values():
                state.close()
            self.datasets.clear()
            raise
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for state in self.datasets.values():
            state.close()
        self.datasets.clear()

    # -- connection handling --------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            encode_line(
                {
                    "event": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "datasets": sorted(self.datasets),
                }
            )
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                response = await self._respond(line, writer)
                try:
                    writer.write(encode_line(response))
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    # The client vanished between request and reply (a
                    # mid-request disconnect).  The computed work is
                    # already published (snapshots/broadcasts do not go
                    # through this writer); just retire the connection.
                    break
        finally:
            self._drop_subscriber(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # Server shutdown cancels the handler mid-wait; the
                # transport is already closing, so there is nothing to
                # propagate.
                pass

    async def _respond(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> Dict[str, Any]:
        request_id: Optional[Any] = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            return await self._dispatch(request, writer)
        except ServiceError as error:
            return error_response(request_id, error.code, str(error))
        except Exception as error:  # noqa: BLE001 — the connection must survive
            return error_response(
                request_id, "internal", f"{type(error).__name__}: {error}"
            )

    async def _dispatch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> Dict[str, Any]:
        op = request.get("op")
        request_id = request.get("id")
        if op not in REQUEST_OPS:
            raise ServiceError(
                f"unknown op {op!r}; expected one of {', '.join(REQUEST_OPS)}",
                code="bad_request",
            )
        state = self._state_for(request)
        if op == "join":
            snapshot = state.snapshot
            return ok_response(
                "join",
                request_id,
                {
                    "version": snapshot.version,
                    "count": len(snapshot.pairs),
                    "pairs": snapshot.pairs,
                },
            )
        if op == "stats":
            return ok_response("stats", request_id, state.stats_body())
        if op == "subscribe":
            state.subscribers.add(writer)
            return ok_response(
                "subscribe",
                request_id,
                {"dataset": state.spec.name, "version": state.snapshot.version},
            )
        if op == "window":
            window = _parse_window(request.get("window"))
            body = await state.submit(lambda: state._window_query(window))
            return ok_response("window", request_id, body)
        # op == "update"
        batch = _parse_batch(request.get("updates"))
        try:
            body = await state.submit(lambda: state._apply_batch(batch))
        except ValueError as error:
            raise ServiceError(str(error), code="update_rejected") from None
        self._broadcast_delta(state, body)
        return ok_response("update", request_id, body)

    def _state_for(self, request: Dict[str, Any]) -> DatasetState:
        name = request.get("dataset", "default")
        try:
            return self.datasets[name]
        except KeyError:
            raise ServiceError(
                f"unknown dataset {name!r}; serving {sorted(self.datasets)}",
                code="unknown_dataset",
            ) from None

    # -- subscriber streaming -------------------------------------------
    def _broadcast_delta(self, state: DatasetState, body: Dict[str, Any]) -> None:
        if not state.subscribers:
            return
        event = encode_line(
            {
                "event": "delta",
                "dataset": state.spec.name,
                "version": body["version"],
                "added": body["added"],
                "removed": body["removed"],
            }
        )
        dead = []
        for subscriber in state.subscribers:
            if subscriber.is_closing():
                dead.append(subscriber)
                continue
            subscriber.write(event)
        for subscriber in dead:
            state.subscribers.discard(subscriber)

    def _drop_subscriber(self, writer: asyncio.StreamWriter) -> None:
        for state in self.datasets.values():
            state.subscribers.discard(writer)


def _parse_window(raw: Any) -> Rect:
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 4
        or not all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in raw)
    ):
        raise ServiceError(
            "window must be [xmin, ymin, xmax, ymax] numbers", code="bad_request"
        )
    xmin, ymin, xmax, ymax = (float(v) for v in raw)
    if not (xmin <= xmax and ymin <= ymax):
        raise ServiceError(
            f"degenerate window [{xmin}, {ymin}, {xmax}, {ymax}]: "
            "min corner must not exceed max corner",
            code="bad_request",
        )
    return Rect(xmin, ymin, xmax, ymax)


def _parse_batch(raw: Any):
    if (
        not isinstance(raw, list)
        or not raw
        or not all(isinstance(line, str) for line in raw)
    ):
        raise ServiceError(
            "updates must be a non-empty list of update-stream lines "
            "('insert SIDE OID X Y' / 'delete SIDE OID')",
            code="bad_request",
        )
    try:
        batches = parse_update_stream(raw)
    except UpdateStreamError as error:
        raise ServiceError(str(error), code="bad_request") from None
    if len(batches) != 1:
        raise ServiceError(
            f"one update request carries exactly one batch, got {len(batches)} "
            "(drop the '---' separators and send separate requests)",
            code="bad_request",
        )
    return batches[0]
