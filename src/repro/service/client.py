"""A small asyncio client for the join service.

The server answers a connection's requests strictly in order, but a
subscribed connection also receives asynchronous ``delta`` event lines
interleaved with its responses.  The client runs one reader task that
routes incoming lines by shape — objects with an ``event`` key go to the
event queue, everything else is the next pending response — so callers
get a simple awaitable request/response API plus an event stream.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional

from repro.service.protocol import ServiceError, encode_line


class ServiceClient:
    """One connection to a :class:`~repro.service.server.JoinService`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._responses: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self.events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self.hello: Optional[Dict[str, Any]] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        client.hello = await client.events.get()
        if client.hello.get("event") != "hello":
            raise ServiceError(f"expected a hello event, got {client.hello!r}")
        return client

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = json.loads(line)
                if isinstance(payload, dict) and "event" in payload:
                    self.events.put_nowait(payload)
                else:
                    self._responses.put_nowait(payload)
        except (ConnectionResetError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object and await its (in-order) response."""
        if self._closed:
            raise ServiceError("the client is closed")
        self._writer.write(encode_line(payload))
        await self._writer.drain()
        return await self._responses.get()

    async def request_ok(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request` but raises on a structured failure."""
        response = await self.request(payload)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("message", "request failed"),
                code=error.get("code", "internal"),
            )
        return response

    async def next_event(self, timeout: float = 5.0) -> Dict[str, Any]:
        """The next ``delta`` (or other) event line on this connection."""
        return await asyncio.wait_for(self.events.get(), timeout)

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    async def join(self, dataset: str = "default", **extra) -> Dict[str, Any]:
        return await self.request_ok({"op": "join", "dataset": dataset, **extra})

    async def window(
        self, window: List[float], dataset: str = "default", **extra
    ) -> Dict[str, Any]:
        return await self.request_ok(
            {"op": "window", "dataset": dataset, "window": window, **extra}
        )

    async def update(
        self, updates: List[str], dataset: str = "default", **extra
    ) -> Dict[str, Any]:
        return await self.request_ok(
            {"op": "update", "dataset": dataset, "updates": updates, **extra}
        )

    async def stats(self, dataset: str = "default", **extra) -> Dict[str, Any]:
        return await self.request_ok({"op": "stats", "dataset": dataset, **extra})

    async def subscribe(self, dataset: str = "default", **extra) -> Dict[str, Any]:
        return await self.request_ok({"op": "subscribe", "dataset": dataset, **extra})

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
