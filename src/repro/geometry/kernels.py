"""Array-native geometry kernels for the CIJ hot path.

The scalar geometry layer (:mod:`repro.geometry.polygon`,
:mod:`repro.geometry.halfplane`) is the *oracle*: every predicate below is
a vectorised NumPy re-implementation of one scalar hot loop, written so
that it produces **bit-identical** floats and therefore byte-identical
decisions.  Three rules make that possible:

* every arithmetic expression keeps the scalar code's exact operation
  sequence and association (``a*x + b*y - c`` stays ``(a*x + b*y) - c``);
* only correctly-rounded operations are used (multiply, add, subtract,
  divide, ``sqrt`` — never ``hypot``, whose last-ulp behaviour differs
  between libm and NumPy), matching the scalar layer which was moved onto
  the same formulas;
* the tolerances come from :mod:`repro.geometry.tolerance`, the same
  module the scalar predicates read.

Polygons travel through the kernels as ``(n, 2)`` float64 vertex arrays in
counter-clockwise order — the array twin of
:attr:`~repro.geometry.polygon.ConvexPolygon.vertices`.  ``n < 3`` means
the polygon is empty, exactly like the scalar class.

NumPy is an optional dependency: import this module freely, but call
:func:`require_numpy` (or let the engine do it) before using a kernel.
The ``compute="kernel"`` engine mode and the ``$REPRO_COMPUTE`` variable
are resolved here so the CLI, the engine and the workload builders share
one switch, mirroring how ``$REPRO_STORAGE`` selects the page store.
"""

from __future__ import annotations

import bisect
import math
import os
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised only where numpy is absent
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon, _far_enough
from repro.geometry.rect import Rect
from repro.geometry.tolerance import BOUNDARY_EPS

#: Compute-mode identifiers accepted by ``EngineConfig.compute``.
COMPUTE_MODES = ("scalar", "kernel")

#: Environment variable selecting the default compute mode (used by CI).
COMPUTE_ENV_VAR = "REPRO_COMPUTE"


def default_compute_mode() -> str:
    """The mode used when none is requested: ``$REPRO_COMPUTE`` or scalar."""
    mode = os.environ.get(COMPUTE_ENV_VAR, "scalar").strip().lower() or "scalar"
    if mode not in COMPUTE_MODES:
        raise ValueError(
            f"{COMPUTE_ENV_VAR}={mode!r} is not a known compute mode; "
            f"expected one of {COMPUTE_MODES}"
        )
    return mode


def resolve_compute_mode(mode: Optional[str]) -> str:
    """Validate an explicit mode (``None`` resolves the default) and check
    that the kernel path's dependency is actually importable."""
    resolved = mode if mode is not None else default_compute_mode()
    if resolved not in COMPUTE_MODES:
        raise ValueError(
            f"unknown compute mode {resolved!r}; expected one of {COMPUTE_MODES}"
        )
    if resolved == "kernel":
        require_numpy()
    return resolved


def require_numpy() -> None:
    """Raise a clear error when the kernel path is requested without NumPy."""
    if not HAVE_NUMPY:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "compute='kernel' requires numpy, which is not installed; "
            "run with compute='scalar' (the default) instead"
        )


# ----------------------------------------------------------------------
# conversions between the scalar and the array representation
# ----------------------------------------------------------------------
def polygon_to_array(polygon: ConvexPolygon):
    """The ``(n, 2)`` float64 vertex array of a scalar polygon."""
    verts = polygon.vertices
    if not verts:
        return np.empty((0, 2), dtype=np.float64)
    return np.array([(v.x, v.y) for v in verts], dtype=np.float64)


def polygon_from_array(verts) -> ConvexPolygon:
    """Rebuild a scalar polygon from a kernel vertex array.

    The array is always the output of :func:`clip_halfplane_array` (or a
    domain rectangle), i.e. a ring the scalar ``_from_clip_ring`` path
    would have produced verbatim, so the normalisation pass is skipped —
    exactly like the scalar fast constructor.
    """
    polygon = ConvexPolygon.__new__(ConvexPolygon)
    polygon._vertices = tuple(Point(float(x), float(y)) for x, y in verts)
    return polygon


def rect_to_array(rect: Rect):
    """The domain rectangle as a kernel vertex array (CCW corners)."""
    return np.array(
        [
            (rect.xmin, rect.ymin),
            (rect.xmax, rect.ymin),
            (rect.xmax, rect.ymax),
            (rect.xmin, rect.ymax),
        ],
        dtype=np.float64,
    )


def points_to_arrays(points: Sequence[Point]):
    """Coordinate arrays ``(xs, ys)`` of a point sequence."""
    n = len(points)
    xs = np.empty(n, dtype=np.float64)
    ys = np.empty(n, dtype=np.float64)
    for i, p in enumerate(points):
        xs[i] = p.x
        ys[i] = p.y
    return xs, ys


# ----------------------------------------------------------------------
# distances (bit-identical to Point.distance_to / Rect.mindist_point)
# ----------------------------------------------------------------------
def distances_to_point(xs, ys, px: float, py: float):
    """Euclidean distances from ``(xs, ys)`` to one point.

    Same expression as :meth:`repro.geometry.point.Point.distance_to`:
    ``sqrt(dx*dx + dy*dy)``.
    """
    dx = xs - px
    dy = ys - py
    return np.sqrt(dx * dx + dy * dy)


def rect_mindist_to_points(
    xmin: float, ymin: float, xmax: float, ymax: float, xs, ys
):
    """``Rect.mindist_point`` of one rectangle against many points.

    Replicates ``max(xmin - x, 0.0, x - xmax)`` — a left-to-right Python
    ``max`` — as two chained ``np.maximum`` calls, then the same
    ``sqrt(dx*dx + dy*dy)``.
    """
    dx = np.maximum(np.maximum(xmin - xs, 0.0), xs - xmax)
    dy = np.maximum(np.maximum(ymin - ys, 0.0), ys - ymax)
    return np.sqrt(dx * dx + dy * dy)


# ----------------------------------------------------------------------
# bisector construction (Equation 1) for one site against an array
# ----------------------------------------------------------------------
def bisector_coefficients(px: float, py: float, qx, qy):
    """Halfplane coefficients ``(a, b, c)`` of ``⊥(p, q)`` for arrays of
    neighbours ``q`` — the vectorised twin of
    :func:`repro.geometry.halfplane.bisector_halfplane`."""
    a = 2.0 * (qx - px)
    b = 2.0 * (qy - py)
    c = (qx * qx + qy * qy) - (px * px + py * py)
    return a, b, c


# ----------------------------------------------------------------------
# halfplane clipping (the cell refinement operation)
# ----------------------------------------------------------------------
def clip_halfplane_array(verts, a: float, b: float, c: float):
    """Clip a CCW vertex ring with the closed halfplane ``a*x + b*y <= c``.

    Bit-identical to :meth:`ConvexPolygon.clip_halfplane` followed by the
    ``_from_clip_ring`` dedup: same tolerance, same vertex/intersection
    emission order, same consecutive-duplicate filtering.  Returns a new
    ``(m, 2)`` array (``m < 3`` = empty).
    """
    n = len(verts)
    if n < 3:
        return verts
    norm = math.sqrt(a * a + b * b)
    tol = BOUNDARY_EPS * (norm if norm > 0.0 else max(1.0, abs(c)))
    xs = verts[:, 0]
    ys = verts[:, 1]
    values = (a * xs + b * ys) - c
    inside = values <= tol
    if inside.all():
        return verts
    if (values >= -tol).all():
        return np.empty((0, 2), dtype=np.float64)

    # Wrapped-successor views built by slice assignment (np.roll is far too
    # slow for rings this small).
    nxt = np.empty_like(verts)
    nxt[: n - 1] = verts[1:]
    nxt[n - 1] = verts[0]
    values_n = np.empty_like(values)
    values_n[: n - 1] = values[1:]
    values_n[n - 1] = values[0]
    crossing = inside != (values_n <= tol)

    # Crossing parameter t = vc / (vc - vn), meaningful only on crossing
    # edges (vc != vn there, since exactly one side clears the tolerance);
    # non-crossing denominators are patched to 1 so the division is safe.
    denom = values - values_n
    denom[~crossing] = 1.0
    t = values / denom
    cross_pts = np.empty_like(verts)
    cross_pts[:, 0] = xs + t * (nxt[:, 0] - xs)
    cross_pts[:, 1] = ys + t * (nxt[:, 1] - ys)

    # Scalar emission order per edge i: vertex i (if inside), then the
    # crossing point (if the edge crosses).
    out = np.empty((2 * n, 2), dtype=np.float64)
    keep = np.zeros(2 * n, dtype=bool)
    out[0::2] = verts
    keep[0::2] = inside
    out[1::2] = cross_pts
    keep[1::2] = crossing
    ring = out[keep]

    # _from_clip_ring dedup: sequential compare-to-last-kept, then drop
    # trailing vertices that coincide with the first.  The ring is tiny
    # (<= a dozen rows), so the Python loop costs nothing and replicates
    # the scalar semantics exactly.
    cleaned: List[int] = []
    for i in range(len(ring)):
        if not cleaned or _far_enough_xy(
            ring[cleaned[-1], 0], ring[cleaned[-1], 1], ring[i, 0], ring[i, 1]
        ):
            cleaned.append(i)
    while len(cleaned) > 1 and not _far_enough_xy(
        ring[cleaned[0], 0],
        ring[cleaned[0], 1],
        ring[cleaned[-1], 0],
        ring[cleaned[-1], 1],
    ):
        cleaned.pop()
    return ring[cleaned]


def _far_enough_xy(ax: float, ay: float, bx: float, by: float) -> bool:
    """Scalar ``_far_enough`` on raw coordinates (same expression)."""
    return abs(ax - bx) > BOUNDARY_EPS or abs(ay - by) > BOUNDARY_EPS


# ----------------------------------------------------------------------
# tuple-ring clipping (the hot representation inside the kernel batches)
#
# NumPy pays ~1-2 microseconds of dispatch per operation, which swamps the
# arithmetic on a 6-vertex ring; profiling showed an array-based clip is
# *slower* than the scalar one.  The batch kernels therefore keep each
# cell as a plain list of (x, y) float tuples and clip with the loop
# below — bit-identical to ``ConvexPolygon.clip_halfplane`` but without
# the Point/Halfplane object churn — and reserve the array operations for
# the places where the operands are genuinely large (the per-pop member
# masks, candidate distance batches and the Phi-pruning matrices).
# ----------------------------------------------------------------------
def ring_of_polygon(polygon: ConvexPolygon) -> List[Tuple[float, float]]:
    """A scalar polygon as a list of ``(x, y)`` tuples."""
    return [(v.x, v.y) for v in polygon.vertices]


def ring_of_rect(rect: Rect) -> List[Tuple[float, float]]:
    """A rectangle's CCW corner ring as coordinate tuples."""
    return [
        (rect.xmin, rect.ymin),
        (rect.xmax, rect.ymin),
        (rect.xmax, rect.ymax),
        (rect.xmin, rect.ymax),
    ]


def polygon_from_ring(ring: Sequence[Tuple[float, float]]) -> ConvexPolygon:
    """Rebuild a scalar polygon from a clip-ring (see
    :func:`polygon_from_array` for why normalisation is skipped)."""
    polygon = ConvexPolygon.__new__(ConvexPolygon)
    polygon._vertices = tuple(Point(x, y) for x, y in ring)
    return polygon


def ring_distances(ring: Sequence[Tuple[float, float]], sx: float, sy: float):
    """Site-to-vertex distances of a ring (``Point.distance_to`` formula)."""
    sqrt = math.sqrt
    return [
        sqrt((sx - x) * (sx - x) + (sy - y) * (sy - y)) for x, y in ring
    ]


def clip_ring(ring, a: float, b: float, c: float):
    """Clip a tuple ring with the closed halfplane ``a*x + b*y <= c``.

    Bit-identical to ``ConvexPolygon.clip_halfplane`` + ``_from_clip_ring``
    (same tolerance, same emission order, same dedup); returns a new list
    (fewer than 3 tuples = empty).
    """
    n = len(ring)
    if n < 3:
        return ring
    norm = math.sqrt(a * a + b * b)
    tol = BOUNDARY_EPS * (norm if norm > 0.0 else max(1.0, abs(c)))
    values = [a * x + b * y - c for x, y in ring]
    if max(values) <= tol:
        return ring
    if min(values) >= -tol:
        return []
    out: List[Tuple[float, float]] = []
    append = out.append
    for i in range(n):
        j = i + 1 if i + 1 < n else 0
        vc = values[i]
        vn = values[j]
        cur_in = vc <= tol
        if cur_in:
            append(ring[i])
        if cur_in != (vn <= tol):
            t = vc / (vc - vn)
            x0, y0 = ring[i]
            x1, y1 = ring[j]
            append((x0 + t * (x1 - x0), y0 + t * (y1 - y0)))
    # _from_clip_ring dedup: drop ring-consecutive near-duplicates, then
    # trailing vertices that coincide with the first (inlined _far_enough).
    eps = BOUNDARY_EPS
    cleaned: List[Tuple[float, float]] = []
    lx = ly = 0.0
    for p in out:
        px, py = p
        if not cleaned or abs(lx - px) > eps or abs(ly - py) > eps:
            cleaned.append(p)
            lx = px
            ly = py
    if cleaned:
        fx, fy = cleaned[0]
        while len(cleaned) > 1:
            tx, ty = cleaned[-1]
            if abs(fx - tx) > eps or abs(fy - ty) > eps:
                break
            cleaned.pop()
    return cleaned


def refine_ring_nearest_first(ring, sx, sy, oxs, oys, ds, vdist, reach):
    """Nearest-first bisector clipping with Lemma-1 early termination.

    The ring-based engine behind :func:`clip_halfplanes_nearest_first`:
    candidates ``(oxs, oys)`` are pre-sorted by ascending distance ``ds``
    (plain Python lists), ``vdist``/``reach`` cache the ring's
    site-to-vertex distances and influence radius.  Replicates the scalar
    walk of ``_approximate_cell`` / the BatchVoronoi pre-refinement
    decision-for-decision: stop at the first candidate beyond the
    (continuously updated) radius, clip every candidate that beats a
    current vertex, never revisit a candidate skipped by Lemma 1.

    Returns ``(ring, vdist, reach, clips)``.

    Implementation: between two clips the ring is constant, so the whole
    run of candidates up to the radius cut-off is tested with one
    ``(rows, |ring|)`` distance matrix instead of per-candidate Python
    loops; the first hit row is the next clip, and everything after it is
    re-tested against the clipped ring in the next round.  The
    per-element arithmetic — subtract, square, add, correctly-rounded
    sqrt, compare — is exactly the scalar walk's, so every hit/miss
    decision is identical.  ``ds`` is ascending, so the Lemma-1 radius
    cut-off is a prefix found by bisection.
    """
    clips = 0
    n = len(ds)
    if n == 0 or len(ring) < 3:
        return ring, vdist, reach, clips
    oxa = np.asarray(oxs, dtype=np.float64)
    oya = np.asarray(oys, dtype=np.float64)
    i = 0
    while i < n:
        # Candidates i..limit-1 pass the radius pre-check under the
        # current reach; the scalar loop breaks at the first one beyond.
        limit = bisect.bisect_right(ds, reach, i)
        if limit == i:
            break
        gxa = np.array([p[0] for p in ring])
        gya = np.array([p[1] for p in ring])
        vda = np.asarray(vdist, dtype=np.float64)
        # Lemma 1 for the whole run: a candidate refines iff it beats some
        # current vertex (dx = ox - gx, exactly the scalar expression).
        dx = oxa[i:limit, None] - gxa[None, :]
        dy = oya[i:limit, None] - gya[None, :]
        hit_rows = (np.sqrt(dx * dx + dy * dy) < vda[None, :]).any(axis=1)
        hits = np.flatnonzero(hit_rows)
        if hits.size == 0:
            break
        h = i + int(hits[0])
        ox = float(oxa[h])  # exact: keeps the clip arithmetic on Python floats
        oy = float(oya[h])
        a = 2.0 * (ox - sx)
        b = 2.0 * (oy - sy)
        c = (ox * ox + oy * oy) - (sx * sx + sy * sy)
        ring = clip_ring(ring, a, b, c)
        vdist = ring_distances(ring, sx, sy)
        reach = 2.0 * max(vdist) if vdist else 0.0
        clips += 1
        if len(ring) < 3:
            break
        i = h + 1
    return ring, vdist, reach, clips


def _wrapped_successors(vx, vy):
    """``(v[i+1 mod n])`` coordinate arrays via slice assignment."""
    n = len(vx)
    wx = np.empty_like(vx)
    wy = np.empty_like(vy)
    wx[: n - 1] = vx[1:]
    wx[n - 1] = vx[0]
    wy[: n - 1] = vy[1:]
    wy[n - 1] = vy[0]
    return wx, wy


def clip_halfplanes_nearest_first(
    verts,
    sx: float,
    sy: float,
    ox,
    oy,
    d,
    vdist,
    reach: float,
):
    """Nearest-first bisector clipping with Lemma-1 early termination.

    The batch form of the scalar ``_approximate_cell`` /
    ``_MemberState.refine`` inner loop: given a site ``(sx, sy)``, its
    current cell ``verts`` (with cached site-to-vertex distances ``vdist``
    and influence radius ``reach``), and candidate neighbours ``(ox, oy)``
    already sorted by ascending distance ``d``, clip the cell by each
    neighbour that passes the Lemma-1 test, stopping at the first neighbour
    beyond the (continuously updated) influence radius.

    Decision-equivalence with the scalar loop: the candidates are sorted,
    so "stop at the first ``d > reach``" equals "only the prefix with
    ``d <= reach`` remains eligible"; a candidate skipped by Lemma 1 under
    an earlier (larger) cell is never revisited by the scalar loop either.
    Each round therefore finds the *first* eligible refiner with one
    vectorised Lemma-1 test, clips, and resumes after it.

    Returns ``(verts, vdist, reach, clips)`` where ``clips`` is the number
    of refinements performed (the scalar loop's ``stats.refinements``
    contribution, computed analytically here).

    This array-facing API delegates to the tuple-ring engine
    (:func:`refine_ring_nearest_first`), which profiling showed beats a
    fully array-based formulation on the tiny rings this workload
    produces.
    """
    ring = [(float(x), float(y)) for x, y in verts]
    ring, vd, reach, clips = refine_ring_nearest_first(
        ring, sx, sy, ox.tolist(), oy.tolist(), d.tolist(),
        list(vdist.tolist()) if hasattr(vdist, "tolist") else list(vdist),
        float(reach),
    )
    if ring:
        out = np.array(ring, dtype=np.float64)
    else:
        out = np.empty((0, 2), dtype=np.float64)
    return out, np.array(vd, dtype=np.float64), reach, clips


# ----------------------------------------------------------------------
# point containment (the pair-reporting shortcut)
# ----------------------------------------------------------------------
def points_in_polygon(verts, px, py, margin: float):
    """Vectorised ``ConvexPolygon._contains_point`` over many points.

    ``margin`` follows the scalar convention: ``+eps`` is the strict
    interior test, ``-eps`` the closed test.  Empty polygons contain
    nothing.  Returns a boolean array over the points.
    """
    n = len(verts)
    if n < 3:
        return np.zeros(len(px), dtype=bool)
    vx = verts[:, 0]
    vy = verts[:, 1]
    wx, wy = _wrapped_successors(vx, vy)
    ex = wx - vx
    ey = wy - vy
    # Threshold per edge: margin * max(1, |dx| + |dy|), as in the scalar.
    thresh = margin * np.maximum(1.0, np.abs(ex) + np.abs(ey))
    cross = ex[:, None] * (py[None, :] - vy[:, None]) - ey[:, None] * (
        px[None, :] - vx[:, None]
    )
    return ~np.any(cross < thresh[:, None], axis=0)


# ----------------------------------------------------------------------
# separating-axis tests (the join predicate and the filter tests)
# ----------------------------------------------------------------------
def sat_intersects(verts_a, verts_b, boundary_counts: bool) -> bool:
    """Convex/convex intersection via the separating-axis theorem.

    The vectorised twin of ``ConvexPolygon.intersects``
    (``boundary_counts=True``, the closed test) and
    ``ConvexPolygon.intersects_interior`` (``False``, the open test that
    excludes zero-area contacts), including the empty-polygon guards.
    """
    if len(verts_a) < 3 or len(verts_b) < 3:
        return False
    return not (
        _axis_separates(verts_a, verts_b, boundary_counts)
        or _axis_separates(verts_b, verts_a, boundary_counts)
    )


def _axis_separates(polygon, other, boundary_counts: bool) -> bool:
    """Whether some edge normal of ``polygon`` separates the two hulls —
    all edges tested in one shot (the boolean is order-independent)."""
    eps = BOUNDARY_EPS
    vx = polygon[:, 0]
    vy = polygon[:, 1]
    wx, wy = _wrapped_successors(vx, vy)
    nx = wy - vy
    ny = vx - wx
    norm = np.sqrt(nx * nx + ny * ny)
    valid = norm >= eps  # scalar: degenerate edges are skipped
    # Projections of both hulls onto every edge normal, relative to the
    # edge's base vertex (same expression as the scalar generator).
    self_proj = (polygon[None, :, 0] - vx[:, None]) * nx[:, None] + (
        polygon[None, :, 1] - vy[:, None]
    ) * ny[:, None]
    other_proj = (other[None, :, 0] - vx[:, None]) * nx[:, None] + (
        other[None, :, 1] - vy[:, None]
    ) * ny[:, None]
    self_max = self_proj.max(axis=1)
    other_min = other_proj.min(axis=1)
    margin = eps * norm if boundary_counts else -(eps * norm)
    separated = valid & (other_min > np.maximum(self_max, 0.0) + margin)
    return bool(separated.any())


def sat_intersects_rect(verts, rect: Rect, boundary_counts: bool = True) -> bool:
    """``ConvexPolygon.intersects_rect``: SAT against the rectangle's ring."""
    if len(verts) < 3:
        return False
    return sat_intersects(verts, rect_to_array(rect), boundary_counts)


# ----------------------------------------------------------------------
# array-side measures (bit-identical to the scalar counterparts)
# ----------------------------------------------------------------------
def bounding_rect_of(verts) -> Rect:
    """``ConvexPolygon.bounding_rect`` of a non-empty vertex array."""
    if len(verts) == 0:
        raise ValueError("bounding rectangle of an empty polygon is undefined")
    xs = verts[:, 0]
    ys = verts[:, 1]
    return Rect(float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max()))


def rects_intersect_mask(
    xmin, ymin, xmax, ymax, oxmin: float, oymin: float, oxmax: float, oymax: float
):
    """Vectorised ``Rect.intersects`` of many rectangles against one."""
    return ~(
        (xmax < oxmin) | (oxmax < xmin) | (ymax < oymin) | (oymax < ymin)
    )


ConvexPolygonArrays = Tuple["np.ndarray", "np.ndarray"]
