"""The numeric tolerance policy shared by every geometric predicate.

Every float comparison in the geometry layer that decides a *topological*
question (is this point inside? do these cells overlap? did this bisector
contribute an edge?) needs a tolerance, and the answers are only mutually
consistent when the predicates agree on what "on the boundary" means.  The
library had grown four independent epsilons (``1e-7`` in ``polygon.py``,
``1e-9`` in ``halfplane.py`` and ``influence.py``, ``1e-6`` in
``dynamic/maintenance.py``), which made it possible for a point within
``[1e-9, 1e-7]`` of a clip boundary to be *outside* the halfplane according
to :meth:`~repro.geometry.halfplane.Halfplane.contains` yet *kept* by
:meth:`~repro.geometry.polygon.ConvexPolygon.clip_halfplane` — a latent
inconsistency that becomes an observable bug the moment two predicates are
combined (and makes differential testing of alternative implementations
meaningless near boundaries).  This module is now the single source of
truth; the constants are grouped by the *kind* of comparison they guard:

``BOUNDARY_EPS``
    Geometric boundary tolerance of the polygon/halfplane predicates
    (clipping, the separating-axis tests, point containment, vertex
    deduplication).  It is expressed in *domain units per unit of normal
    length*: predicates scale it by the norm of the edge or halfplane
    normal, so ``BOUNDARY_EPS`` is effectively "distance to the boundary
    below which a point counts as on it".  The experiment domain is
    ``[0, 10000]``, so ``1e-7`` sits comfortably between the coordinate
    noise floor (~1e-12 at that magnitude) and the smallest feature the
    algorithms care about.

``CONTAINMENT_EPS``
    Slack of the Φ(L, p) influence-region membership test (Equation 3),
    which compares two already-computed *distances*.  Distances are
    non-negative and well-conditioned, so this tolerance can be much
    tighter than the boundary epsilon; it only needs to absorb the final
    rounding of the two square roots being compared.

``TIE_SLACK``
    Slack of the dynamic-maintenance invalidation scan, which must decide
    whether a deleted site *may have* contributed an edge to a cell.  The
    test is intentionally one-sided — the slack only ever *adds* cells to
    the dirty set, and recomputation then proves them unchanged — so it is
    deliberately the loosest of the three: missing a tie would silently
    corrupt the maintained answer, while a false positive merely costs one
    redundant recomputation.

The NumPy kernel path (:mod:`repro.geometry.kernels`) imports the same
constants: kernel-vs-scalar equality is asserted byte-for-byte by the
differential test-suite, which is only meaningful when both implementations
agree on what "equal" means near a boundary.
"""

from __future__ import annotations

#: Geometric boundary tolerance of polygon/halfplane predicates, in domain
#: units per unit of normal length (see module docstring).
BOUNDARY_EPS = 1e-7

#: Distance-comparison slack of the Φ influence-region test.
CONTAINMENT_EPS = 1e-9

#: One-sided tie slack of the dynamic-maintenance invalidation scan.
TIE_SLACK = 1e-6
