"""Planar geometry substrate used by every CIJ algorithm.

The Common Influence Join operates on 2-D pointsets whose Voronoi cells are
convex polygons.  This subpackage provides the exact geometric machinery the
paper relies on:

* :class:`~repro.geometry.point.Point` and distance helpers,
* :class:`~repro.geometry.rect.Rect` minimum bounding rectangles with the
  ``mindist`` lower bounds used by best-first R-tree traversals,
* :class:`~repro.geometry.halfplane.Halfplane` and perpendicular bisectors
  (Equation 1 of the paper),
* :class:`~repro.geometry.polygon.ConvexPolygon` with halfplane clipping —
  the representation of Voronoi cells (Equation 2),
* the Φ(L, p) influence region of Equation 3 used to prune non-leaf R-tree
  entries (Lemma 3), in :mod:`repro.geometry.influence`,
* a Hilbert space-filling curve used to order leaves when bulk-loading the
  Voronoi R-trees of FM-CIJ / PM-CIJ.
"""

from repro.geometry.point import Point, centroid, dist, dist_sq, midpoint
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.halfplane import Halfplane, bisector_halfplane, perpendicular_bisector
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.influence import phi_contains_point, polygon_within_phi, rect_sides
from repro.geometry.hilbert import hilbert_index

__all__ = [
    "Point",
    "Rect",
    "Segment",
    "Halfplane",
    "ConvexPolygon",
    "dist",
    "dist_sq",
    "midpoint",
    "centroid",
    "bisector_halfplane",
    "perpendicular_bisector",
    "phi_contains_point",
    "polygon_within_phi",
    "rect_sides",
    "hilbert_index",
]
