"""Line segments and point-to-segment distances.

The Φ(L, p) pruning region of Equation 3 is defined against a side ``L`` of
an R-tree MBR, so the segment distance machinery lives here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two endpoints ``a`` and ``b``."""

    a: Point
    b: Point

    __slots__ = ("a", "b")

    def __reduce__(self):
        # Frozen dataclasses with __slots__ need an explicit pickle path
        # (the default slot-state restore setattrs on a frozen instance).
        return (Segment, (self.a, self.b))

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def project_parameter(self, p: Point) -> float:
        """Parameter ``t`` of the orthogonal projection of ``p`` onto the
        supporting line, with ``t=0`` at ``a`` and ``t=1`` at ``b``.

        For a degenerate (zero-length) segment the parameter is defined as 0.
        """
        dx = self.b.x - self.a.x
        dy = self.b.y - self.a.y
        denom = dx * dx + dy * dy
        if denom == 0.0:
            return 0.0
        return ((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / denom

    def point_at(self, t: float) -> Point:
        """The point ``a + t * (b - a)`` on the supporting line."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    def closest_point_to(self, p: Point) -> Point:
        """The point of the (closed) segment nearest to ``p``."""
        t = self.project_parameter(p)
        t = min(1.0, max(0.0, t))
        return self.point_at(t)

    def distance_to_point(self, p: Point) -> float:
        """``mindist(L, p)``: distance from ``p`` to the closest location on
        the segment.  This is exactly the quantity appearing in Equation 3."""
        c = self.closest_point_to(p)
        return math.hypot(c.x - p.x, c.y - p.y)
