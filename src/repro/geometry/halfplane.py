"""Halfplanes and perpendicular bisectors (Equation 1 of the paper).

A Voronoi cell is the intersection of halfplanes ``⊥(p_i, p_j)`` over all
other sites ``p_j`` (Equation 2); this module provides the halfplane
representation and the bisector constructor used by every cell-refinement
step in the paper's algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.geometry.point import Point
from repro.geometry.tolerance import BOUNDARY_EPS


@dataclass(frozen=True)
class Halfplane:
    """The closed halfplane ``a*x + b*y <= c``.

    The coefficient vector ``(a, b)`` points towards the *excluded* side,
    i.e. locations with ``a*x + b*y > c`` are outside the halfplane.
    """

    a: float
    b: float
    c: float

    __slots__ = ("a", "b", "c")

    def __reduce__(self):
        # Frozen dataclasses with __slots__ need an explicit pickle path
        # (the default slot-state restore setattrs on a frozen instance).
        return (Halfplane, (self.a, self.b, self.c))

    def value(self, p: Point) -> float:
        """Signed evaluation ``a*x + b*y - c`` (non-positive inside)."""
        return self.a * p.x + self.b * p.y - self.c

    def contains(self, p: Point, eps: float = BOUNDARY_EPS) -> bool:
        """Whether ``p`` lies in the closed halfplane (with tolerance).

        The tolerance is scaled exactly like the polygon clipping tolerance
        (``eps`` times the normal's norm, i.e. an ``eps`` distance to the
        boundary line), so a point near the boundary gets the same verdict
        here and from :meth:`ConvexPolygon.clip_halfplane` — the historic
        ``1e-9 * max(1, |c|)`` variant disagreed with clipping for points
        within ``[1e-9, 1e-7]`` of the line.  The degenerate zero-normal
        halfplane keeps the old coefficient-scaled fallback.
        """
        norm = math.sqrt(self.a * self.a + self.b * self.b)
        tol = eps * (norm if norm > 0.0 else max(1.0, abs(self.c)))
        return self.value(p) <= tol

    def signed_distance(self, p: Point) -> float:
        """Euclidean signed distance of ``p`` to the boundary line.

        Negative inside the halfplane, positive outside.  Raises
        :class:`ValueError` for a degenerate (zero-normal) halfplane.
        """
        norm = math.hypot(self.a, self.b)
        if norm == 0.0:
            raise ValueError("degenerate halfplane with zero normal vector")
        return self.value(p) / norm

    def boundary_points(self, span: float = 1.0) -> Tuple[Point, Point]:
        """Two distinct points on the boundary line, ``2*span`` apart.

        Useful for plotting and for tests that need explicit boundary
        geometry.
        """
        norm = math.hypot(self.a, self.b)
        if norm == 0.0:
            raise ValueError("degenerate halfplane with zero normal vector")
        # Foot of the perpendicular from the origin onto the boundary.
        fx = self.a * self.c / (norm * norm)
        fy = self.b * self.c / (norm * norm)
        # Unit direction along the boundary.
        ux = -self.b / norm
        uy = self.a / norm
        return (
            Point(fx - span * ux, fy - span * uy),
            Point(fx + span * ux, fy + span * uy),
        )


def bisector_halfplane(p: Point, q: Point) -> Halfplane:
    """The halfplane ``⊥_p(p, q)`` of locations closer to ``p`` than ``q``.

    This is Equation 1 of the paper.  The boundary is the perpendicular
    bisector of the segment ``pq``; ``p`` itself always satisfies the
    returned halfplane strictly (unless ``p == q``, which is rejected).

    Raises
    ------
    ValueError
        If ``p`` and ``q`` coincide, in which case no bisector exists.
    """
    if p.x == q.x and p.y == q.y:
        raise ValueError("cannot build a bisector halfplane for identical points")
    # dist(x, p) <= dist(x, q)  <=>  2*(q - p) . x <= |q|^2 - |p|^2
    a = 2.0 * (q.x - p.x)
    b = 2.0 * (q.y - p.y)
    c = (q.x * q.x + q.y * q.y) - (p.x * p.x + p.y * p.y)
    return Halfplane(a, b, c)


def perpendicular_bisector(p: Point, q: Point) -> Tuple[Point, Point]:
    """Two points spanning the perpendicular bisector line of ``pq``.

    Provided for visualisation and for the TP-VOR baseline, which needs the
    crossing parameter of a bisector with a query segment.
    """
    hp = bisector_halfplane(p, q)
    span = max(1.0, p.distance_to(q))
    return hp.boundary_points(span=span)
