"""Points in the plane and elementary distance helpers.

All CIJ algorithms work on Euclidean distance in two dimensions, matching the
paper's setting.  Points are immutable so they can be used as dictionary keys
(e.g. the REUSE buffer of NM-CIJ keys cached Voronoi cells by their site).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point.

    Parameters
    ----------
    x, y:
        Cartesian coordinates.  The experiment harness normalises every
        dataset to the ``[0, 10000]`` domain used in the paper, but nothing
        in the geometry layer assumes a particular domain.
    """

    x: float
    y: float

    __slots__ = ("x", "y")

    def __reduce__(self):
        # A frozen dataclass with __slots__ cannot use pickle's default
        # slot-state path (it setattrs on a frozen instance); rebuilding
        # through the constructor keeps points picklable — the sharded
        # executor ships REUSE-buffer cells between worker processes.
        return (Point, (self.x, self.y))

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``.

        Computed as ``sqrt(dx*dx + dy*dy)`` rather than ``math.hypot``:
        multiply, add and sqrt are correctly rounded in both C and NumPy,
        so the vectorised kernels reproduce this value bit-for-bit (hypot
        may differ from it by one ulp, which would break the kernel-vs-
        scalar byte-equality the differential tests pin).
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return math.sqrt(dx * dx + dy * dy)

    def distance_sq_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def dist(a: Point, b: Point) -> float:
    """Euclidean distance between two points (same formula as
    :meth:`Point.distance_to`; see there for the kernel bit-equality
    constraint)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return math.sqrt(dx * dx + dy * dy)


def dist_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Sequence[Point] | Iterable[Point]) -> Point:
    """Arithmetic centroid of a non-empty collection of points.

    Used wherever the paper orders a traversal "by distance from the centroid
    of the group" (BatchVoronoi, BatchConditionalFilter).

    Raises
    ------
    ValueError
        If ``points`` is empty.
    """
    pts = list(points)
    if not pts:
        raise ValueError("centroid() requires at least one point")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))
