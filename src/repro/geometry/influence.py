"""The Φ(L, p) influence region of Equation 3 and the Lemma-3 pruning test.

Given a point ``p`` and a line segment ``L`` (a side of a non-leaf R-tree
MBR), Φ(L, p) is the set of locations closer to ``p`` than to *any* location
on ``L``:

    Φ(L, p) = { b | dist(p, b) <= mindist(L, b) }

The paper evaluates membership with a piecewise function: the perpendiculars
to ``L`` through its endpoints split the plane into three partitions A1, A2,
A3; inside the middle strip the boundary of Φ is a parabola (point/line
bisector) and in the outer partitions it is the perpendicular bisector of
``p`` and the corresponding endpoint.  Both that piecewise formulation and a
direct distance-based evaluation are provided here; the test-suite checks
that they agree, and the algorithms use the cheap direct form.

Lemma 3 then states that a convex polygon ``T`` lies entirely inside
Φ(L, p) iff every vertex of ``T`` does, which gives the constant-per-vertex
pruning check used by the ConditionalFilter (Algorithm 5).
"""

from __future__ import annotations

from typing import List

from repro.geometry.point import Point, dist
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.tolerance import CONTAINMENT_EPS

_EPS = CONTAINMENT_EPS


def phi_contains_point(segment: Segment, p: Point, location: Point) -> bool:
    """Whether ``location`` lies in Φ(L, p) for ``L = segment``.

    Direct evaluation of Equation 3: compare the distance to ``p`` with the
    minimum distance to the segment.
    """
    return dist(p, location) <= segment.distance_to_point(location) + _EPS


def phi_contains_point_piecewise(segment: Segment, p: Point, location: Point) -> bool:
    """Piecewise evaluation of Φ(L, p) membership as described in the paper.

    The perpendiculars to ``L`` at its endpoints partition the plane into
    A1 (before the first endpoint), A2 (the orthogonal strip over ``L``) and
    A3 (past the second endpoint).  In A1/A3 the nearest location on ``L`` is
    the corresponding endpoint, so membership reduces to a linear halfplane
    test against that endpoint's bisector with ``p``.  In A2 the nearest
    location is the orthogonal projection, giving the parabolic test
    ``dist(p, b) <= distance-to-supporting-line``.
    """
    t = segment.project_parameter(location)
    if segment.length() <= _EPS or t <= 0.0:
        # Partition A1: the closest location on L is endpoint a.
        nearest = segment.a
    elif t >= 1.0:
        # Partition A3: the closest location on L is endpoint b.
        nearest = segment.b
    else:
        # Partition A2: the closest location is the orthogonal projection.
        nearest = segment.point_at(t)
    return dist(p, location) <= dist(nearest, location) + _EPS


def polygon_within_phi(polygon: ConvexPolygon, segment: Segment, p: Point) -> bool:
    """Lemma 3: ``polygon`` ⊆ Φ(L, p) iff every vertex is in Φ(L, p).

    Both Φ(L, p) and the polygon are convex, so vertex containment implies
    full containment.  Empty polygons are vacuously contained.
    """
    return all(phi_contains_point(segment, p, v) for v in polygon.vertices)


def rect_sides(rect: Rect) -> List[Segment]:
    """The four sides of an MBR, as segments, for the Lemma-3 entry test.

    The paper prunes a non-leaf entry ``e`` when some already-seen candidate
    ``p`` satisfies "T falls in Φ(L, p) for *all* sides L of e": Voronoi
    cells of points inside ``e`` can then never reach ``T``.
    """
    c = rect.corners()
    return [
        Segment(c[0], c[1]),
        Segment(c[1], c[2]),
        Segment(c[2], c[3]),
        Segment(c[3], c[0]),
    ]


def entry_pruned_by_candidate(rect: Rect, polygon: ConvexPolygon, candidate: Point) -> bool:
    """Whether candidate point ``candidate`` prunes the subtree MBR ``rect``.

    Implements the non-leaf pruning rule of Section IV-A: the subtree rooted
    at ``rect`` cannot contain any point whose Voronoi cell intersects the
    target cell ``polygon`` if ``polygon`` lies inside Φ(L, candidate) for
    every side ``L`` of ``rect``.  Degenerate (point) MBRs are handled by the
    same test because their sides degenerate to points.
    """
    if polygon.is_empty():
        return True
    return all(
        polygon_within_phi(polygon, side, candidate) for side in rect_sides(rect)
    )
