"""Convex polygons with halfplane clipping.

Voronoi cells are convex polygons obtained by clipping the space domain with
perpendicular-bisector halfplanes (Equation 2).  The paper's algorithms need:

* clipping a convex polygon by a halfplane (cell refinement, Line 9 of
  Algorithm 1),
* the vertex set ``Γ_c(p_i)`` of the current cell (Lemmas 1 and 2),
* convex/convex and convex/rectangle intersection tests (the join predicate
  itself and the filter steps of Algorithms 5 and 6).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.geometry.halfplane import Halfplane
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.tolerance import BOUNDARY_EPS

# Tolerance used by the clipping and intersection predicates; see
# repro.geometry.tolerance for the policy shared with the other predicates
# (and with the NumPy kernel path, which must agree bit-for-bit).
_EPS = BOUNDARY_EPS


class ConvexPolygon:
    """An immutable convex polygon stored as a counter-clockwise vertex ring.

    The polygon may be empty (no vertices) — the result of clipping a cell
    completely away.  Degenerate polygons (fewer than three distinct
    vertices) are treated as empty for the purposes of area and intersection
    tests, matching how an empty Voronoi-cell approximation behaves.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence[Point] | Iterable[Point]):
        verts = list(vertices)
        self._vertices: Tuple[Point, ...] = tuple(_normalise_ring(verts))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_rect(rect: Rect) -> "ConvexPolygon":
        """The rectangle as a convex polygon (used for the space domain U)."""
        return ConvexPolygon(rect.corners())

    @staticmethod
    def empty() -> "ConvexPolygon":
        """An empty polygon."""
        return ConvexPolygon([])

    @classmethod
    def _from_clip_ring(cls, vertices: List[Point]) -> "ConvexPolygon":
        """Fast constructor for rings produced by halfplane clipping.

        Clipping a CCW convex ring with a halfplane yields a CCW convex ring
        whose only possible defect is consecutive (near-)duplicate vertices,
        so the full normalisation pass (orientation check) is skipped.
        """
        cleaned: List[Point] = []
        for v in vertices:
            if not cleaned or _far_enough(cleaned[-1], v):
                cleaned.append(v)
        while len(cleaned) > 1 and not _far_enough(cleaned[0], cleaned[-1]):
            cleaned.pop()
        polygon = cls.__new__(cls)
        polygon._vertices = tuple(cleaned if len(cleaned) >= 3 else cleaned)
        return polygon

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The vertex ring in counter-clockwise order (Γ_c in the paper)."""
        return self._vertices

    def is_empty(self) -> bool:
        """Whether the polygon has no interior (fewer than 3 vertices)."""
        return len(self._vertices) < 3

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConvexPolygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConvexPolygon({list(self._vertices)!r})"

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Polygon area by the shoelace formula (zero when empty)."""
        if self.is_empty():
            return 0.0
        verts = self._vertices
        total = 0.0
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            total += v.x * w.y - w.x * v.y
        return abs(total) / 2.0

    def centroid(self) -> Point:
        """Area centroid of the polygon.

        Falls back to the vertex average for degenerate polygons; raises
        :class:`ValueError` when the polygon is empty.
        """
        if not self._vertices:
            raise ValueError("centroid of an empty polygon is undefined")
        verts = self._vertices
        if len(verts) < 3:
            sx = sum(v.x for v in verts)
            sy = sum(v.y for v in verts)
            return Point(sx / len(verts), sy / len(verts))
        cx = cy = 0.0
        twice_area = 0.0
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            cross = v.x * w.y - w.x * v.y
            twice_area += cross
            cx += (v.x + w.x) * cross
            cy += (v.y + w.y) * cross
        if abs(twice_area) < _EPS:
            sx = sum(v.x for v in verts)
            sy = sum(v.y for v in verts)
            return Point(sx / len(verts), sy / len(verts))
        factor = 1.0 / (3.0 * twice_area)
        return Point(cx * factor, cy * factor)

    def bounding_rect(self) -> Rect:
        """Tight MBR of the polygon; raises for an empty polygon."""
        if not self._vertices:
            raise ValueError("bounding rectangle of an empty polygon is undefined")
        return Rect.from_points(self._vertices)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point, eps: float = _EPS) -> bool:
        """Whether ``p`` lies inside or on the boundary of the polygon."""
        return self._contains_point(p, -eps)

    def contains_point_interior(self, p: Point, eps: float = _EPS) -> bool:
        """Whether ``p`` lies strictly inside the polygon, by an ``eps``
        margin on every edge.

        The strict counterpart of :meth:`contains_point`: a point within
        ``eps`` of the boundary is rejected, so a positive answer implies a
        positive-area overlap with any other region whose closure contains
        ``p`` — the guarantee the join algorithms' containment shortcut
        needs under the exclude-zero-area tie convention.
        """
        return self._contains_point(p, eps)

    def _contains_point(self, p: Point, margin: float) -> bool:
        """Shared edge loop: ``p`` must clear every edge by ``margin``
        (negative = closed test with tolerance, positive = strict)."""
        if self.is_empty():
            return False
        verts = self._vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            cross = (w.x - v.x) * (p.y - v.y) - (w.y - v.y) * (p.x - v.x)
            if cross < margin * max(1.0, abs(w.x - v.x) + abs(w.y - v.y)):
                return False
        return True

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether the polygon and the rectangle share at least one point."""
        if self.is_empty():
            return False
        return self.intersects(ConvexPolygon.from_rect(rect))

    def intersects(self, other: "ConvexPolygon", eps: float = _EPS) -> bool:
        """Convex/convex intersection via the separating axis theorem.

        Touching polygons (sharing only boundary) count as intersecting —
        the *closed-set* test.  The filter phases use it because it is
        conservative: a candidate whose approximate cell merely touches a
        target must survive until the exact predicate decides.  The join
        predicate itself is :meth:`intersects_interior`.
        """
        if self.is_empty() or other.is_empty():
            return False
        return not _separating_axis_exists(
            self._vertices, other._vertices, eps, boundary_counts=True
        )

    def intersects_interior(self, other: "ConvexPolygon", eps: float = _EPS) -> bool:
        """Whether the polygons overlap with positive area (open-set test).

        This is the library's boundary-tie convention for the join
        predicate: two cells that share only a zero-area contact (an edge
        segment or a single vertex, e.g. when two bisectors fall exactly
        colinear) do **not** join.  Separation is accepted as soon as the
        overlap depth along some edge normal is within ``eps`` of zero, so
        the test is the epsilon-guarded complement of :meth:`intersects`.

        For convex polygons the separating-axis test over both polygons'
        edge normals is complete for weak separation as well: a line that
        weakly separates two convex polygons touching at a vertex or edge
        can always be chosen parallel to an edge of one of them (the
        separating normal cone at the contact is spanned by edge normals).
        """
        if self.is_empty() or other.is_empty():
            return False
        return not _separating_axis_exists(
            self._vertices, other._vertices, eps, boundary_counts=False
        )

    def clip_halfplane(self, hp: Halfplane) -> "ConvexPolygon":
        """Clip the polygon with the closed halfplane ``hp``.

        Returns a new polygon; the result may be empty.  This is the cell
        refinement operation ``V_c(p_i) := V_c(p_i) ∩ ⊥(p_i, p_j)``.
        """
        if self.is_empty():
            return self
        verts = self._vertices
        # The tolerance is expressed in geometric units: |value| / |(a, b)|
        # is the distance to the boundary line, so scaling the epsilon by the
        # normal's norm keeps the behaviour stable for both huge and tiny
        # halfplane coefficients (e.g. bisectors of nearly-coincident sites).
        # sqrt(a*a + b*b) rather than math.hypot: multiply/add/sqrt are all
        # correctly rounded in both C and NumPy, so the kernel path computes
        # the identical float; hypot may differ from it by one ulp.
        norm = math.sqrt(hp.a * hp.a + hp.b * hp.b)
        tol = _EPS * (norm if norm > 0.0 else max(1.0, abs(hp.c)))
        values = [hp.value(v) for v in verts]
        if all(v <= tol for v in values):
            return self
        if all(v >= -tol for v in values):
            # Entire polygon on or outside the boundary: at best a segment
            # remains, which has no interior.
            return ConvexPolygon.empty()
        out: List[Point] = []
        n = len(verts)
        for i in range(n):
            cur, nxt = verts[i], verts[(i + 1) % n]
            vc, vn = values[i], values[(i + 1) % n]
            cur_in = vc <= tol
            nxt_in = vn <= tol
            if cur_in:
                out.append(cur)
            if cur_in != nxt_in:
                t = vc / (vc - vn)
                out.append(
                    Point(cur.x + t * (nxt.x - cur.x), cur.y + t * (nxt.y - cur.y))
                )
        return ConvexPolygon._from_clip_ring(out)

    def clip_rect(self, rect: Rect) -> "ConvexPolygon":
        """Clip the polygon to a rectangle (intersection with the domain)."""
        result = self
        for hp in _rect_halfplanes(rect):
            result = result.clip_halfplane(hp)
            if result.is_empty():
                break
        return result

    def intersection(self, other: "ConvexPolygon") -> "ConvexPolygon":
        """Exact intersection of two convex polygons.

        Implemented by clipping ``self`` against every edge halfplane of
        ``other``.  Used when an application needs the actual common
        influence region ``R(p, q)`` (e.g. the collaborative-promotion
        example), not just the boolean join predicate.
        """
        if self.is_empty() or other.is_empty():
            return ConvexPolygon.empty()
        result = self
        for hp in other.edge_halfplanes():
            result = result.clip_halfplane(hp)
            if result.is_empty():
                break
        return result

    def edge_halfplanes(self) -> List[Halfplane]:
        """Halfplanes whose intersection is this polygon (one per edge)."""
        hps: List[Halfplane] = []
        verts = self._vertices
        n = len(verts)
        if n < 3:
            return hps
        for i in range(n):
            v, w = verts[i], verts[(i + 1) % n]
            # Interior lies to the left of edge v->w (CCW ring), i.e.
            # cross((w - v), (x - v)) >= 0.  Rewrite as a*x + b*y <= c.
            a = w.y - v.y
            b = v.x - w.x
            c = a * v.x + b * v.y
            hps.append(Halfplane(a, b, c))
        return hps


# ----------------------------------------------------------------------
# module-level helpers
# ----------------------------------------------------------------------
def _normalise_ring(verts: List[Point]) -> List[Point]:
    """Deduplicate consecutive vertices and orient the ring CCW."""
    if not verts:
        return []
    cleaned: List[Point] = []
    for v in verts:
        if not cleaned or _far_enough(cleaned[-1], v):
            cleaned.append(v)
    while len(cleaned) > 1 and not _far_enough(cleaned[0], cleaned[-1]):
        cleaned.pop()
    if len(cleaned) < 3:
        return cleaned
    if _signed_area(cleaned) < 0.0:
        cleaned.reverse()
    return cleaned


def _far_enough(a: Point, b: Point) -> bool:
    return abs(a.x - b.x) > _EPS or abs(a.y - b.y) > _EPS


def _signed_area(verts: Sequence[Point]) -> float:
    total = 0.0
    n = len(verts)
    for i in range(n):
        v, w = verts[i], verts[(i + 1) % n]
        total += v.x * w.y - w.x * v.y
    return total / 2.0


def _rect_halfplanes(rect: Rect) -> List[Halfplane]:
    return [
        Halfplane(-1.0, 0.0, -rect.xmin),
        Halfplane(1.0, 0.0, rect.xmax),
        Halfplane(0.0, -1.0, -rect.ymin),
        Halfplane(0.0, 1.0, rect.ymax),
    ]


def _separating_axis_exists(
    a: Sequence[Point], b: Sequence[Point], eps: float, boundary_counts: bool = True
) -> bool:
    """Whether some edge normal of ``a`` or ``b`` separates the two hulls.

    With ``boundary_counts`` (the closed-set test) an axis only separates
    when the hulls are a clear ``eps`` gap apart, so touching hulls count as
    intersecting.  Without it (the open-set test) an axis separates as soon
    as the overlap depth shrinks to within ``eps`` of zero, so a zero-area
    contact counts as separated.
    """
    for polygon, other in ((a, b), (b, a)):
        n = len(polygon)
        for i in range(n):
            v, w = polygon[i], polygon[(i + 1) % n]
            # Outward normal of edge v->w for a CCW ring.
            nx = w.y - v.y
            ny = v.x - w.x
            # Same-formula constraint as clip_halfplane: the kernel SAT
            # must reproduce this norm bit-for-bit.
            norm = math.sqrt(nx * nx + ny * ny)
            if norm < eps:
                continue
            # Max projection of this polygon onto the normal.
            self_max = max((p.x - v.x) * nx + (p.y - v.y) * ny for p in polygon)
            other_min = min((p.x - v.x) * nx + (p.y - v.y) * ny for p in other)
            margin = eps * norm if boundary_counts else -eps * norm
            if other_min > max(self_max, 0.0) + margin:
                return True
    return False
