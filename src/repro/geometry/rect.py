"""Axis-aligned rectangles (minimum bounding rectangles).

R-tree entries carry an MBR; every pruning rule in the paper is expressed in
terms of ``mindist`` between an MBR and a point (Lemma 2, and the best-first
visit order of Algorithms 1, 2 and 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __reduce__(self):
        # Frozen dataclasses with __slots__ need an explicit pickle path
        # (the default slot-state restore setattrs on a frozen instance).
        return (Rect, (self.xmin, self.ymin, self.xmax, self.ymax))

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate rectangle: ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(p: Point) -> "Rect":
        """Degenerate rectangle covering a single point."""
        return Rect(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Sequence[Point] | Iterable[Point]) -> "Rect":
        """Tight bounding rectangle of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("Rect.from_points() requires at least one point")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def union_all(rects: Sequence["Rect"] | Iterable["Rect"]) -> "Rect":
        """Bounding rectangle of a non-empty collection of rectangles."""
        rs = list(rects)
        if not rs:
            raise ValueError("Rect.union_all() requires at least one rectangle")
        return Rect(
            min(r.xmin for r in rs),
            min(r.ymin for r in rs),
            max(r.xmax for r in rs),
            max(r.ymax for r in rs),
        )

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """Area of the rectangle (zero for degenerate point rectangles)."""
        return self.width * self.height

    def perimeter(self) -> float:
        """Perimeter; the quadratic-split heuristic minimises MBR enlargement."""
        return 2.0 * (self.width + self.height)

    def center(self) -> Point:
        """Geometric centre of the rectangle."""
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> List[Point]:
        """The four corners in counter-clockwise order."""
        return [
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        ]

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point, eps: float = 0.0) -> bool:
        """Whether ``p`` lies inside the (closed) rectangle."""
        return (
            self.xmin - eps <= p.x <= self.xmax + eps
            and self.ymin - eps <= p.y <= self.ymax + eps
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` is fully contained in this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two closed rectangles share at least one point."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The common rectangle, or ``None`` when the rectangles are disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    # ------------------------------------------------------------------
    # combinations and metrics
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to also cover ``other`` (Guttman's criterion)."""
        return self.union(other).area() - self.area()

    def mindist_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to any location inside the rectangle.

        This is the classical ``mindist`` lower bound of best-first nearest
        neighbour search; it is zero when the point lies inside the MBR.
        """
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        # sqrt(dx*dx + dy*dy) rather than hypot: the NumPy kernels replicate
        # this exact expression, and all three operations are correctly
        # rounded in both C and NumPy (hypot is not guaranteed to match).
        return math.sqrt(dx * dx + dy * dy)

    def mindist_sq_point(self, p: Point) -> float:
        """Squared ``mindist`` to a point."""
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return dx * dx + dy * dy

    def maxdist_point(self, p: Point) -> float:
        """Maximum distance from ``p`` to any location inside the rectangle."""
        dx = max(abs(p.x - self.xmin), abs(p.x - self.xmax))
        dy = max(abs(p.y - self.ymin), abs(p.y - self.ymax))
        return math.hypot(dx, dy)

    def mindist_rect(self, other: "Rect") -> float:
        """Minimum distance between any two locations of the two rectangles."""
        dx = max(self.xmin - other.xmax, 0.0, other.xmin - self.xmax)
        dy = max(self.ymin - other.ymax, 0.0, other.ymin - self.ymax)
        return math.hypot(dx, dy)

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side."""
        return Rect(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )

    def sample_grid(self, per_side: int) -> List[Point]:
        """A ``per_side x per_side`` grid of points covering the rectangle.

        Convenience helper used by tests and examples to probe regions.
        """
        if per_side < 2:
            return [self.center()]
        xs = [self.xmin + self.width * i / (per_side - 1) for i in range(per_side)]
        ys = [self.ymin + self.height * i / (per_side - 1) for i in range(per_side)]
        return [Point(x, y) for x in xs for y in ys]
