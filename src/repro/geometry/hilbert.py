"""Hilbert space-filling curve index.

FM-CIJ and PM-CIJ bulk-load the Voronoi R-trees by visiting source leaves in
Hilbert order of their centroids (Section III-C, "Optimized construction of
R'_P and R'_Q"), so that consecutively packed leaf pages contain cells that
are close in space.  The same ordering is reused by the bulk-loading helper
for point R-trees.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect

DEFAULT_ORDER = 16


def hilbert_index(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Map integer grid coordinates to their Hilbert-curve index.

    Parameters
    ----------
    x, y:
        Grid coordinates in ``[0, 2**order)``.
    order:
        Number of curve iterations (bits per coordinate).

    Returns
    -------
    int
        Position along the Hilbert curve, in ``[0, 4**order)``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"coordinates ({x}, {y}) outside the order-{order} grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return d


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip the quadrant as required by the Hilbert recursion."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def hilbert_value(point: Point, domain: Rect, order: int = DEFAULT_ORDER) -> int:
    """Hilbert index of a real-valued point, scaled to the given domain.

    Points outside ``domain`` are clamped onto its boundary so that slightly
    out-of-range centroids (possible after floating-point arithmetic on cell
    vertices) still receive a stable ordering value.
    """
    side = 1 << order
    width = domain.width or 1.0
    height = domain.height or 1.0
    gx = int((point.x - domain.xmin) / width * (side - 1))
    gy = int((point.y - domain.ymin) / height * (side - 1))
    gx = min(side - 1, max(0, gx))
    gy = min(side - 1, max(0, gy))
    return hilbert_index(gx, gy, order)


def hilbert_sorted(points: Sequence[Point], domain: Rect, order: int = DEFAULT_ORDER):
    """Indices of ``points`` sorted by Hilbert value over ``domain``."""
    return sorted(range(len(points)), key=lambda i: hilbert_value(points[i], domain, order))
