"""Figure 8 — effect of the LRU buffer size (a) and of the datasize (b)."""

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.pm_cij import pm_cij


def test_fig8a_buffer_effect(benchmark, experiment_runner):
    result = experiment_runner("fig8a")
    series = {}
    for buffer_pct, algorithm, pages in result.rows:
        series.setdefault(algorithm, {})[buffer_pct] = pages
    fractions = sorted(series["NM-CIJ"])
    # NM-CIJ is the cheapest algorithm at every buffer size and approaches
    # the lower bound as the buffer grows.
    for fraction in fractions:
        assert series["NM-CIJ"][fraction] <= series["PM-CIJ"][fraction]
        assert series["PM-CIJ"][fraction] <= series["FM-CIJ"][fraction]
        assert series["LB"][fraction] <= series["NM-CIJ"][fraction]
    # A larger buffer never hurts any algorithm (within a small tolerance
    # for LRU boundary effects at tiny buffer sizes).
    for algorithm in ("FM-CIJ", "PM-CIJ", "NM-CIJ"):
        assert series[algorithm][fractions[-1]] <= series[algorithm][fractions[0]]
    # The paper reports NM-CIJ converging to ~1.3x LB at a 2% buffer of a
    # 100K-point workload; at this reduced scale a leaf neighbourhood covers
    # a much larger fraction of the tiny trees, so the gap to LB is wider.
    # The reproducible claim is the ordering above plus buffer monotonicity.

    # Benchmark the storage substrate this figure exercises: a full LRU
    # buffer sweep over a synthetic page-access trace.
    from repro.storage.buffer import LRUBuffer

    trace = [page % 97 for page in range(5000)]

    def replay_trace():
        buffer = LRUBuffer(32)
        return sum(1 for page in trace if buffer.access(page))

    benchmark(replay_trace)


def test_fig8b_scalability(benchmark, experiment_runner):
    result = experiment_runner("fig8b")
    series = {}
    for datasize, algorithm, pages in result.rows:
        series.setdefault(algorithm, {})[datasize] = pages
    sizes = sorted(series["NM-CIJ"])
    for n in sizes:
        assert series["LB"][n] <= series["NM-CIJ"][n] <= series["PM-CIJ"][n] <= series["FM-CIJ"][n]
    # Costs grow with the datasize for every algorithm.
    for algorithm in ("FM-CIJ", "PM-CIJ", "NM-CIJ", "LB"):
        assert series[algorithm][sizes[0]] < series[algorithm][sizes[-1]]

    # Benchmark PM-CIJ (the intermediate algorithm) at a fixed size.
    points_p = uniform_points(250, seed=8)
    points_q = uniform_points(250, seed=18)

    def run_pm():
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.02), points_p=points_p, points_q=points_q
        )
        return pm_cij(workload.tree_p, workload.tree_q, domain=workload.domain)

    benchmark(run_pm)
