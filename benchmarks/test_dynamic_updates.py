"""Dynamic-workload benchmark: incremental maintenance vs full rebuild.

For a range of update-batch sizes the same stream is absorbed twice:

* **incremental** — one :class:`~repro.dynamic.DynamicJoinSession` applies
  the batches; the cost is the number of exact Voronoi cells recomputed
  (``cells_invalidated``, the dominant cost of the join per the Figure 7
  breakdown) plus the wall-clock of ``apply_updates``.
* **rebuild** — after every batch the join is recomputed from scratch,
  which recomputes the cells of *every* live point.

The table written to ``benchmarks/results/local/dynamic_updates.txt`` reports
both, and the test asserts the paper-style claim: for small batches the
incremental path performs measurably fewer cell computations than the
rebuild (and never returns a different answer — the differential suite in
``tests/dynamic/`` enforces that on every stream; here it is sampled once
per batch size).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.datasets.workload import (
    DynamicWorkloadConfig,
    WorkloadConfig,
    build_workload,
    generate_update_batches,
)
from repro.engine import JoinEngine

# .txt tables carry wall clocks -> untracked sidecar (see conftest.py).
RESULTS_DIR = Path(__file__).parent / "results" / "local"

#: Points per side of the base workload (override for larger machines).
N_POINTS = int(os.environ.get("REPRO_DYNAMIC_BENCH_POINTS", "400"))
BATCHES = 4
BATCH_SIZES = (1, 4, 16, 64)


def _run_stream(batch_size: int):
    """Absorb one stream incrementally, counting rebuild cost alongside."""
    engine = JoinEngine()
    workload = build_workload(WorkloadConfig(n_p=N_POINTS, n_q=N_POINTS, seed=29))
    session = engine.open_dynamic(
        workload.tree_p, workload.tree_q, domain=workload.domain
    )
    batches = generate_update_batches(
        workload,
        DynamicWorkloadConfig(batches=BATCHES, batch_size=batch_size, seed=71),
    )
    rebuild_cells = 0
    wall = 0.0
    for batch in batches:
        start = time.perf_counter()
        session.apply_updates(batch)
        wall += time.perf_counter() - start
        # What keeping the answer current by rebuilding would recompute
        # after this batch: the cells of every live point.
        rebuild_cells += session.point_count("P") + session.point_count("Q")
    # Sampled differential check: the incremental answer equals a rebuild.
    rebuilt = engine.run(
        "nm", session.tree_p, session.tree_q, domain=session.domain
    )
    final_ok = session.pair_set() == rebuilt.pair_set()
    stats = session.stats
    workload.close()
    return {
        "batch_size": batch_size,
        "updates": stats.updates_applied,
        "incremental_cells": stats.cells_invalidated,
        "rebuild_cells": rebuild_cells,
        "delta_pairs": stats.pairs_emitted + stats.pairs_retracted,
        "wall": wall,
        "matches_rebuild": final_ok,
    }


def test_incremental_maintenance_beats_rebuild(benchmark, bench_record):
    rows = [_run_stream(size) for size in BATCH_SIZES]

    lines = [
        f"dynamic updates: incremental delta-CIJ vs rebuild "
        f"({N_POINTS} x {N_POINTS} base points, {BATCHES} batches per stream)",
        f"{'batch':>6s} {'updates':>8s} {'incr cells':>11s} {'rebuild cells':>14s} "
        f"{'saving':>7s} {'pair delta':>11s} {'incr s':>7s} {'== rebuild':>11s}",
    ]
    for row in rows:
        saving = 1.0 - row["incremental_cells"] / row["rebuild_cells"]
        lines.append(
            f"{row['batch_size']:6d} {row['updates']:8d} "
            f"{row['incremental_cells']:11d} {row['rebuild_cells']:14d} "
            f"{saving:6.1%} {row['delta_pairs']:11d} {row['wall']:7.2f} "
            f"{str(row['matches_rebuild']):>11s}"
        )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines)
    (RESULTS_DIR / "dynamic_updates.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)

    bench_record(
        "dynamic_updates",
        counters={
            f"batch{row['batch_size']}_{key}": row[key]
            for row in rows
            for key in ("incremental_cells", "rebuild_cells", "delta_pairs")
        },
        info={f"batch{row['batch_size']}_wall_s": row["wall"] for row in rows},
    )

    # Correctness is non-negotiable at every scale.
    assert all(row["matches_rebuild"] for row in rows)
    # The headline claim: incremental maintenance touches fewer cells than
    # rebuilding, overwhelmingly so for small batches.
    small = rows[0]
    assert small["incremental_cells"] < small["rebuild_cells"] * 0.25
    for row in rows:
        assert row["incremental_cells"] < row["rebuild_cells"]
    # Cost scales with batch size (larger batches touch more cells).
    assert rows[0]["incremental_cells"] < rows[-1]["incremental_cells"]

    benchmark(lambda: _run_stream(4))
