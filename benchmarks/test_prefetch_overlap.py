"""Overlapped-I/O benchmark: prefetch latency hiding on the fig8 workload.

The fig8 experiments measure I/O cost under the paper's synchronous fetch
model.  This benchmark replays the same workload shape (uniform pointsets,
2% LRU buffer) on the *file* backend with an injected per-page service
latency, and measures how much of that latency the prefetch pipeline hides:

* ``prefetch=off`` — every physical fetch stalls for the full service time
  (the synchronous baseline);
* ``prefetch=next_batch`` — the serial NM-CIJ issues each upcoming leaf
  batch's candidate pages while the current batch computes its cells;
* ``prefetch=next_shard`` — the sharded executor (inline pool) stages the
  next shard's opening pages while the current shard runs.

The table written to ``benchmarks/results/local/prefetch.txt`` reports stalled
vs overlapped milliseconds per mode; ``prefetch.json`` records the
deterministic counters for the CI baseline gate.  The invariant asserted
alongside the latency claim: pairs and logical page accounting are
byte-identical in every mode.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.datasets.synthetic import uniform_points
from repro.experiments.drivers.common import run_cij

# .txt tables carry wall clocks -> untracked sidecar (see conftest.py).
RESULTS_DIR = Path(__file__).parent / "results" / "local"

N_POINTS = int(os.environ.get("REPRO_PREFETCH_BENCH_POINTS", "400"))
#: Simulated per-page disk service time (seconds): ~2ms, a fast HDD seek
#: or a slow network volume — large enough to dominate the real reads.
LATENCY = float(os.environ.get("REPRO_PREFETCH_BENCH_LATENCY", "0.002"))
WORKERS = 4


def run_mode(points_p, points_q, **overrides):
    return run_cij(
        "nm",
        points_p,
        points_q,
        storage="file",
        fetch_latency=LATENCY,
        **overrides,
    )


def test_prefetch_hides_stall_time_on_file_backend(benchmark, bench_record):
    points_p = uniform_points(N_POINTS, seed=8)
    points_q = uniform_points(N_POINTS, seed=18)
    sharded = dict(executor="sharded", workers=WORKERS, pool="inline")

    runs = {
        "off": run_mode(points_p, points_q),
        "next_batch": run_mode(points_p, points_q, prefetch="next_batch"),
        "sharded_off": run_mode(points_p, points_q, **sharded),
        "next_shard": run_mode(
            points_p, points_q, prefetch="next_shard", prefetch_depth=4, **sharded
        ),
    }

    lines = [
        f"prefetch latency hiding (NM-CIJ, {N_POINTS} x {N_POINTS} points, "
        f"file backend, {LATENCY * 1000:.1f} ms/page service time)",
        f"{'mode':12s} {'pairs':>7s} {'pages':>7s} {'issued':>7s} {'hits':>6s} "
        f"{'wasted':>7s} {'stall ms':>9s} {'overlap ms':>11s}",
    ]
    for mode, result in runs.items():
        io = result.storage
        lines.append(
            f"{mode:12s} {len(result.pairs):7d} "
            f"{result.stats.total_page_accesses:7d} "
            f"{io.pages_prefetched:7d} {io.prefetch_hits:6d} "
            f"{io.prefetch_wasted:7d} {io.stall_time * 1000:9.1f} "
            f"{io.overlap_time * 1000:11.1f}"
        )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines)
    (RESULTS_DIR / "prefetch.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)

    bench_record(
        "prefetch",
        counters={
            "pairs": len(runs["off"].pairs),
            "serial_page_accesses": runs["off"].stats.total_page_accesses,
            "sharded_page_accesses": runs["sharded_off"].stats.total_page_accesses,
            "next_batch_pages_prefetched": runs["next_batch"].storage.pages_prefetched,
            "next_batch_prefetch_hits": runs["next_batch"].storage.prefetch_hits,
            "next_batch_prefetch_wasted": runs["next_batch"].storage.prefetch_wasted,
            "next_shard_pages_prefetched": runs["next_shard"].storage.pages_prefetched,
            "next_shard_prefetch_hits": runs["next_shard"].storage.prefetch_hits,
            "next_shard_prefetch_wasted": runs["next_shard"].storage.prefetch_wasted,
        },
        info={
            f"{mode}_stall_ms": result.storage.stall_time * 1000
            for mode, result in runs.items()
        },
    )

    # Invariant: prefetching never changes the answer or the paper's
    # logical accounting.
    for mode in ("next_batch",):
        assert runs[mode].pairs == runs["off"].pairs
        assert (
            runs[mode].stats.total_page_accesses
            == runs["off"].stats.total_page_accesses
        )
    assert runs["next_shard"].pairs == runs["sharded_off"].pairs == runs["off"].pairs
    assert (
        runs["next_shard"].stats.total_page_accesses
        == runs["sharded_off"].stats.total_page_accesses
    )

    # The latency-hiding claim: prefetching converts stall into overlap.
    assert runs["next_batch"].storage.prefetch_hits > 0
    assert runs["next_batch"].storage.overlap_time > 0
    assert runs["next_batch"].storage.stall_time < runs["off"].storage.stall_time
    assert runs["next_shard"].storage.prefetch_hits > 0
    assert runs["next_shard"].storage.overlap_time > 0
    assert (
        runs["next_shard"].storage.stall_time
        < runs["sharded_off"].storage.stall_time
    )

    benchmark(lambda: run_mode(points_p, points_q, prefetch="next_batch"))
