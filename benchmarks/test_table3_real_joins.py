"""Table III — CIJ on real dataset pairs: output size and page accesses."""

from repro.datasets.real_like import real_like_dataset
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.nm_cij import nm_cij


def test_table3_real_dataset_joins(benchmark, experiment_runner):
    result = experiment_runner("table3")
    expected_pairs = {("SC", "PP"), ("CE", "LO"), ("CE", "SC"), ("LO", "PP"), ("PA", "SC"), ("PA", "PP")}
    assert {(row[0], row[1]) for row in result.rows} == expected_pairs
    for q_name, p_name, n_q, n_p, pairs, fm, pm, nm in result.rows:
        # Paper claims for every dataset pair: NM < PM < FM page accesses,
        # and the output size is comparable to the input size (not the
        # Cartesian product).
        assert nm < pm < fm
        assert pairs >= max(n_p, n_q)
        assert pairs <= 25 * (n_p + n_q)

    # Benchmark NM-CIJ on the smallest real pair (PA join SC).
    points_q = real_like_dataset("PA", scale=400)
    points_p = real_like_dataset("SC", scale=400)

    def run_real_join():
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.02), points_p=points_p, points_q=points_q
        )
        return nm_cij(workload.tree_p, workload.tree_q, domain=workload.domain)

    benchmark(run_real_join)
