"""Sharded-engine benchmark: FM-CIJ join-phase parallelism and the NM-CIJ
shard-boundary REUSE handoff.

Two claims are measured and written to ``benchmarks/results/``:

* **Sharded FM-CIJ** — the partitioned synchronous traversal distributes
  the join phase (the CPU-heavy polygon refinement walk) across forked
  workers with a byte-identical merged result.  Wall-clock improvement is
  asserted only when the machine actually has more than one CPU (the join
  phase cannot speed up on a single core); the determinism claims are
  asserted unconditionally.
* **NM-CIJ boundary handoff** — carrying the REUSE buffer across shard
  boundaries drops the P-cell recomputation count of a sharded NM-CIJ to
  exactly the serial level, closing the work gap PR 1's independent shards
  left open.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.datasets.synthetic import uniform_points
from repro.engine import default_engine
from repro.experiments.drivers.common import fresh_workload

# .txt tables carry wall clocks -> untracked sidecar (see conftest.py).
RESULTS_DIR = Path(__file__).parent / "results" / "local"

N_POINTS = int(os.environ.get("REPRO_SHARD_BENCH_POINTS", "1200"))
WORKERS = 4


def timed_run(algorithm, points_p, points_q, **overrides):
    workload = fresh_workload(points_p, points_q)
    try:
        start = time.perf_counter()
        result = default_engine().run(
            algorithm,
            workload.tree_p,
            workload.tree_q,
            domain=workload.domain,
            **overrides,
        )
        elapsed = time.perf_counter() - start
        return result, elapsed
    finally:
        workload.close()


def write_table(name: str, lines) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def test_sharded_fm_parallel_join(benchmark, bench_record):
    points_p = uniform_points(N_POINTS, seed=7)
    points_q = uniform_points(N_POINTS, seed=17)

    serial, serial_wall = timed_run("fm", points_p, points_q)
    sharded, sharded_wall = timed_run(
        "fm", points_p, points_q, executor="sharded", workers=WORKERS, pool="fork"
    )

    write_table(
        "sharded_fm.txt",
        [
            f"sharded FM-CIJ ({N_POINTS} x {N_POINTS} points, {WORKERS} workers, "
            f"{os.cpu_count()} cpus)",
            f"{'config':10s} {'wall s':>8s} {'join s':>8s} {'pairs':>8s} {'pages':>8s}",
            f"{'serial':10s} {serial_wall:8.2f} {serial.stats.join_cpu_seconds:8.2f} "
            f"{len(serial.pairs):8d} {serial.stats.total_page_accesses:8d}",
            f"{'sharded':10s} {sharded_wall:8.2f} {sharded.stats.join_cpu_seconds:8.2f} "
            f"{len(sharded.pairs):8d} {sharded.stats.total_page_accesses:8d}",
        ],
    )

    bench_record(
        "sharded_fm",
        counters={
            "pairs": len(sharded.pairs),
            "serial_page_accesses": serial.stats.total_page_accesses,
            "sharded_page_accesses": sharded.stats.total_page_accesses,
        },
        info={"serial_wall_s": serial_wall, "sharded_wall_s": sharded_wall},
    )

    # Determinism: the merged shard output is byte-identical to the serial
    # coupled traversal, page accounting included.
    assert sharded.pairs == serial.pairs
    assert (
        sharded.stats.total_page_accesses == serial.stats.total_page_accesses
    )

    # Wall clock: only a multi-core machine can run shards concurrently.
    if (os.cpu_count() or 1) >= 2:
        assert sharded.stats.join_cpu_seconds < serial.stats.join_cpu_seconds * 1.05

    benchmark(
        lambda: timed_run(
            "fm",
            points_p,
            points_q,
            executor="sharded",
            workers=WORKERS,
            pool="fork",
        )
    )


def test_nm_boundary_handoff_closes_work_gap(benchmark, bench_record):
    points_p = uniform_points(N_POINTS, seed=8)
    points_q = uniform_points(N_POINTS, seed=18)

    serial, _ = timed_run("nm", points_p, points_q)
    independent, _ = timed_run(
        "nm",
        points_p,
        points_q,
        executor="sharded",
        workers=WORKERS,
        pool="inline",
        reuse_handoff="never",
    )
    handoff, _ = timed_run(
        "nm",
        points_p,
        points_q,
        executor="sharded",
        workers=WORKERS,
        pool="inline",
        reuse_handoff="always",
    )

    def row(label, result):
        stats = result.stats
        return (
            f"{label:12s} {stats.cells_computed_p:10d} {stats.cells_reused_p:10d} "
            f"{len(result.pairs):8d}"
        )

    write_table(
        "sharded_nm_handoff.txt",
        [
            f"NM-CIJ shard-boundary REUSE ({N_POINTS} x {N_POINTS} points, "
            f"{WORKERS} shards)",
            f"{'config':12s} {'P computed':>10s} {'P reused':>10s} {'pairs':>8s}",
            row("serial", serial),
            row("no-handoff", independent),
            row("handoff", handoff),
        ],
    )

    bench_record(
        "sharded_nm_handoff",
        counters={
            "pairs": len(serial.pairs),
            "serial_cells_computed_p": serial.stats.cells_computed_p,
            "no_handoff_cells_computed_p": independent.stats.cells_computed_p,
            "handoff_cells_computed_p": handoff.stats.cells_computed_p,
            "handoff_cells_reused_p": handoff.stats.cells_reused_p,
        },
    )

    assert independent.pairs == handoff.pairs == serial.pairs
    # PR 1's independent shards recompute the boundary cells; the handoff
    # eliminates every one of them, matching serial exactly.
    assert independent.stats.cells_computed_p > serial.stats.cells_computed_p
    assert handoff.stats.cells_computed_p == serial.stats.cells_computed_p
    assert handoff.stats.cells_reused_p == serial.stats.cells_reused_p

    benchmark(
        lambda: timed_run(
            "nm",
            points_p,
            points_q,
            executor="sharded",
            workers=WORKERS,
            pool="inline",
            reuse_handoff="always",
        )
    )


def test_cell_cache_dedupes_cross_unit_recomputation(benchmark, bench_record):
    """The opt-in P-cell cache absorbs every cross-unit recomputation.

    With independent units (``reuse_handoff="never"``) each unit starts
    with an empty REUSE buffer, so boundary cells are recomputed from the
    ``R_P`` tree once per unit that needs them.  The per-node cache
    (``EngineConfig.cell_cache``) serves those repeats from memory: every
    cache hit replaces exactly one recomputation, pairs are unchanged, and
    the saving is reported as ``cells_cached_p``.
    """
    points_p = uniform_points(N_POINTS, seed=8)
    points_q = uniform_points(N_POINTS, seed=18)

    baseline, _ = timed_run(
        "nm",
        points_p,
        points_q,
        executor="sharded",
        workers=WORKERS,
        pool="inline",
        reuse_handoff="never",
    )
    cached, _ = timed_run(
        "nm",
        points_p,
        points_q,
        executor="sharded",
        workers=WORKERS,
        pool="inline",
        reuse_handoff="never",
        cell_cache=True,
    )

    write_table(
        "sharded_nm_cell_cache.txt",
        [
            f"NM-CIJ cross-unit P-cell cache ({N_POINTS} x {N_POINTS} points, "
            f"{WORKERS} workers, independent units)",
            f"{'config':12s} {'P computed':>10s} {'P cached':>10s} {'pairs':>8s}",
            f"{'no-cache':12s} {baseline.stats.cells_computed_p:10d} "
            f"{baseline.stats.cells_cached_p:10d} {len(baseline.pairs):8d}",
            f"{'cache':12s} {cached.stats.cells_computed_p:10d} "
            f"{cached.stats.cells_cached_p:10d} {len(cached.pairs):8d}",
        ],
    )

    bench_record(
        "sharded_nm_cell_cache",
        counters={
            "pairs": len(cached.pairs),
            "no_cache_cells_computed_p": baseline.stats.cells_computed_p,
            "cached_cells_computed_p": cached.stats.cells_computed_p,
            "cells_cached_p": cached.stats.cells_cached_p,
        },
    )

    assert cached.pairs == baseline.pairs
    assert cached.stats.cells_cached_p > 0
    # A hit is exactly one recomputation avoided — no more, no less.
    assert (
        cached.stats.cells_computed_p + cached.stats.cells_cached_p
        == baseline.stats.cells_computed_p
    )

    benchmark(
        lambda: timed_run(
            "nm",
            points_p,
            points_q,
            executor="sharded",
            workers=WORKERS,
            pool="inline",
            reuse_handoff="never",
            cell_cache=True,
        )
    )
