"""Table II — BatchVoronoi on the five (stand-in) real datasets."""

from repro.datasets.real_like import real_like_dataset
from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import compute_voronoi_diagram


def test_table2_batch_on_real_datasets(benchmark, experiment_runner):
    result = experiment_runner("table2")
    datasets = {row[0] for row in result.rows}
    assert datasets == {"PP", "SC", "CE", "LO", "PA"}
    for name, cardinality, pages, cpu, lb in result.rows:
        # BATCH is I/O-efficient on every dataset: within a small factor of
        # the lower bound of scanning the source tree once.
        assert pages >= lb
        assert pages <= 12 * lb
    # The smallest dataset (PA) must also be the cheapest in absolute I/O.
    by_name = {row[0]: row for row in result.rows}
    assert by_name["PA"][2] <= by_name["PP"][2]

    points = real_like_dataset("PA", scale=600)
    tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
    benchmark(lambda: compute_voronoi_diagram(tree, DOMAIN, strategy="batch"))
