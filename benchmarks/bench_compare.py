#!/usr/bin/env python3
"""Compare benchmark JSON results against the committed baselines.

Usage::

    python benchmarks/bench_compare.py                 # gate: exit 1 on drift
    python benchmarks/bench_compare.py --tolerance 0.10
    python benchmarks/bench_compare.py --update        # adopt current results

The benchmark suite writes one machine-readable document per artefact to
``benchmarks/results/*.json`` (see ``benchmarks/conftest.py``); this script
diffs their *deterministic* numbers against ``benchmarks/baselines/*.json``
and fails when any counter drifts by more than the tolerance (10% by
default) in either direction — a page-access count that *dropped* 30% is
as worth a look as one that grew, and an intentional improvement is adopted
by re-running with ``--update`` and committing the new baselines.

What is compared:

* ``kind: "table"`` documents — every numeric cell of every row, except
  columns whose name marks them as timing (``cpu``, ``time``, ``wall``,
  ``second``, ``(s)``, ``(ms)``): wall clocks are machine-dependent and
  never gate.
* ``kind: "counters"`` documents — every value of the ``counters``
  mapping; the free-form ``info`` mapping is ignored.

Booleans must match exactly; strings (labels) must match exactly; a
baseline row/key missing from the results (or vice versa) is a failure.
Results produced at a different ``REPRO_BENCH_SCALE`` than their baseline
are skipped with a warning instead of producing nonsense diffs.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

#: Column-name fragments marking machine-dependent timing columns.
TIMING_MARKERS = ("cpu", "time", "wall", "second", "(s)", "(ms)")

DEFAULT_TOLERANCE = 0.10


def is_timing_column(column: str) -> bool:
    name = column.lower()
    return any(marker in name for marker in TIMING_MARKERS)


def iter_values(document: dict) -> Iterator[Tuple[str, object]]:
    """Yield ``(label, value)`` for every gated value of a document."""
    if document.get("kind") == "counters":
        for key in sorted(document.get("counters", {})):
            yield f"counters[{key}]", document["counters"][key]
        return
    columns = document.get("columns", [])
    gated = [i for i, column in enumerate(columns) if not is_timing_column(column)]
    for row_index, row in enumerate(document.get("rows", [])):
        for i in gated:
            if i < len(row):
                yield f"row {row_index} [{columns[i]}]", row[i]


def compare_values(label: str, base, current, tolerance: float) -> List[str]:
    """The drift messages (empty = within tolerance) for one value pair."""
    if isinstance(base, bool) or isinstance(current, bool):
        if base is not current:
            return [f"{label}: expected {base!r}, got {current!r}"]
        return []
    if isinstance(base, (int, float)) and isinstance(current, (int, float)):
        allowed = tolerance * max(abs(base), 1.0)
        if abs(current - base) > allowed:
            direction = "regressed" if current > base else "dropped"
            return [
                f"{label}: {direction} {base!r} -> {current!r} "
                f"(|Δ| {abs(current - base):.4g} > allowed {allowed:.4g})"
            ]
        return []
    if base != current:
        return [f"{label}: expected {base!r}, got {current!r}"]
    return []


def compare_documents(base: dict, current: dict, tolerance: float) -> List[str]:
    problems: List[str] = []
    base_values = dict(iter_values(base))
    current_values = dict(iter_values(current))
    for label in base_values:
        if label not in current_values:
            problems.append(f"{label}: missing from current results")
            continue
        problems.extend(
            compare_values(label, base_values[label], current_values[label], tolerance)
        )
    for label in current_values:
        if label not in base_values:
            problems.append(f"{label}: not in baseline (re-baseline with --update)")
    return problems


def load(path: Path) -> dict:
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def update_baselines() -> int:
    results = sorted(RESULTS_DIR.glob("*.json"))
    if not results:
        print(f"no results under {RESULTS_DIR}; run the benchmark suite first")
        return 1
    BASELINES_DIR.mkdir(parents=True, exist_ok=True)
    for path in results:
        shutil.copy(path, BASELINES_DIR / path.name)
        print(f"baselined {path.name}")
    return 0


def run_gate(tolerance: float) -> int:
    baselines = sorted(BASELINES_DIR.glob("*.json"))
    if not baselines:
        print(f"no baselines under {BASELINES_DIR}; nothing to gate")
        return 0
    failures = 0
    skipped = 0
    for baseline_path in baselines:
        result_path = RESULTS_DIR / baseline_path.name
        name = baseline_path.stem
        if not result_path.exists():
            print(f"FAIL {name}: no result produced (expected {result_path})")
            failures += 1
            continue
        base, current = load(baseline_path), load(result_path)
        if base.get("scale") != current.get("scale"):
            print(
                f"skip {name}: scale {current.get('scale')!r} != baseline "
                f"{base.get('scale')!r} (set REPRO_BENCH_SCALE={base.get('scale')})"
            )
            skipped += 1
            continue
        problems = compare_documents(base, current, tolerance)
        if problems:
            print(f"FAIL {name}:")
            for problem in problems:
                print(f"  - {problem}")
            failures += 1
        else:
            print(f"ok   {name}")
    total = len(baselines)
    print(
        f"\n{total - failures - skipped}/{total} within ±{tolerance:.0%}"
        + (f", {skipped} skipped (scale mismatch)" if skipped else "")
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drift per counter (default 0.10)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current results over the committed baselines",
    )
    args = parser.parse_args(argv)
    if args.update:
        return update_baselines()
    return run_gate(args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
