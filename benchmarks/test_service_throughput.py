"""Service throughput benchmark: mixed read+update load on one server.

An in-process :class:`~repro.service.server.JoinService` is driven by a
small fleet of concurrent scripted clients, each issuing the same
deterministic mix of ``join`` / ``window`` / ``update`` / ``stats``
requests over real sockets.  Per-request latencies are collected with
``time.perf_counter`` and summarised as p50/p99 and queries per second —
machine-dependent numbers that go into the free-form ``info`` mapping.

What *is* gated by ``bench_compare.py`` are the deterministic counters:
how many requests of each kind were issued, that none of them failed,
the final update-batch version, and the final pair set size.  The update
batches touch disjoint object ids, so the final state — and with it the
final join answer — is independent of how the concurrent writers happened
to interleave; the benchmark closes by asserting the served answer equals
a from-scratch engine run on the final trees.

The table is written to ``benchmarks/results/local/service_throughput.txt`` and
the machine-readable counters to ``service_throughput.json``.
"""

from __future__ import annotations

import asyncio
import os
import time
from pathlib import Path

from repro.engine import JoinEngine
from repro.service import DatasetSpec, JoinService, ServiceClient

# .txt tables carry wall clocks -> untracked sidecar (see conftest.py).
RESULTS_DIR = Path(__file__).parent / "results" / "local"

#: Concurrent client connections (override for larger machines).
N_CLIENTS = int(os.environ.get("REPRO_SERVICE_BENCH_CLIENTS", "4"))
#: Request rounds per client; each round is join + window + update + stats.
ROUNDS = int(os.environ.get("REPRO_SERVICE_BENCH_ROUNDS", "6"))
#: Base workload size per side.
N_POINTS = int(os.environ.get("REPRO_SERVICE_BENCH_POINTS", "150"))

SPEC = DatasetSpec(
    name="default", n_p=N_POINTS, n_q=N_POINTS, seed=17, max_queue=64
)


def _update_batch(client: int, round_no: int) -> list:
    """One deterministic update batch with ids disjoint across clients.

    Insert oids are unique per (client, round) and never collide with the
    base workload, so every interleaving of the concurrent writers lands
    on the same final point sets.
    """
    base = 100_000 * (client + 1) + 10 * round_no
    x = float(200 + 37 * client + 530 * round_no) % 10_000
    y = float(9_700 - 41 * client - 470 * round_no) % 10_000
    lines = [
        f"insert P {base} {x} {y}",
        f"insert Q {base + 1} {y} {x}",
    ]
    if round_no >= 2:
        # Retract the P point inserted two rounds earlier.
        lines.append(f"delete P {100_000 * (client + 1) + 10 * (round_no - 2)}")
    return lines


def _window(client: int, round_no: int) -> list:
    side = 1_500.0 + 400.0 * client
    x0 = (800.0 * client + 900.0 * round_no) % (10_000 - side)
    y0 = (600.0 * client + 1_100.0 * round_no) % (10_000 - side)
    return [x0, y0, x0 + side, y0 + side]


async def _run_client(host, port, client, latencies, counts):
    async with await ServiceClient.connect(host, port) as conn:
        for round_no in range(ROUNDS):
            script = [
                ("join", {"op": "join"}),
                ("window", {"op": "window", "window": _window(client, round_no)}),
                (
                    "update",
                    {"op": "update", "updates": _update_batch(client, round_no)},
                ),
                ("stats", {"op": "stats"}),
            ]
            for op, payload in script:
                start = time.perf_counter()
                await conn.request_ok({"dataset": "default", **payload})
                latencies.append(time.perf_counter() - start)
                counts[op] += 1


async def _run_load():
    service = JoinService([SPEC])
    host, port = await service.start()
    latencies = []
    counts = {"join": 0, "window": 0, "update": 0, "stats": 0}
    try:
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _run_client(host, port, client, latencies, counts)
                for client in range(N_CLIENTS)
            )
        )
        wall = time.perf_counter() - start

        async with await ServiceClient.connect(host, port) as conn:
            final_join = await conn.join()
            final_stats = await conn.stats()

        # The served answer must equal a from-scratch run on the final
        # trees — the bench is a correctness harness too.
        state = service.datasets["default"]
        session = state.session
        oracle = JoinEngine().run(
            "nm", session.tree_p, session.tree_q, domain=session.domain
        )
        pairs_match = [
            tuple(pair) for pair in final_join["pairs"]
        ] == sorted(oracle.pair_set())
    finally:
        await service.close()
    return {
        "wall": wall,
        "latencies": latencies,
        "counts": counts,
        "final_version": final_join["version"],
        "final_pairs": len(final_join["pairs"]),
        "points_p": final_stats["points"]["P"],
        "points_q": final_stats["points"]["Q"],
        "pairs_match": pairs_match,
    }


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def test_service_mixed_load_throughput(benchmark, bench_record):
    result = asyncio.run(_run_load())

    counts = result["counts"]
    total = sum(counts.values())
    latencies = result["latencies"]
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    qps = total / result["wall"] if result["wall"] else 0.0

    lines = [
        f"service throughput: {N_CLIENTS} clients x {ROUNDS} rounds of "
        f"join+window+update+stats ({N_POINTS} x {N_POINTS} base points)",
        f"{'requests':>9s} {'updates':>8s} {'final pairs':>12s} "
        f"{'p50 ms':>8s} {'p99 ms':>8s} {'qps':>8s}",
        f"{total:9d} {counts['update']:8d} {result['final_pairs']:12d} "
        f"{p50 * 1e3:8.2f} {p99 * 1e3:8.2f} {qps:8.1f}",
    ]
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines)
    (RESULTS_DIR / "service_throughput.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)

    bench_record(
        "service_throughput",
        counters={
            "clients": N_CLIENTS,
            "requests_total": total,
            "join_requests": counts["join"],
            "window_requests": counts["window"],
            "update_requests": counts["update"],
            "stats_requests": counts["stats"],
            "batches_applied": result["final_version"],
            "final_pairs": result["final_pairs"],
            "final_points_p": result["points_p"],
            "final_points_q": result["points_q"],
            "answer_matches_oracle": result["pairs_match"],
            "errors": 0,
        },
        info={
            "latency_p50_ms": p50 * 1e3,
            "latency_p99_ms": p99 * 1e3,
            "latency_max_ms": max(latencies) * 1e3,
            "qps": qps,
            "wall_s": result["wall"],
        },
    )

    # Every scripted request succeeded and every batch was applied.
    assert total == N_CLIENTS * ROUNDS * 4
    assert result["final_version"] == counts["update"]
    # The concurrent interleaving never corrupted the maintained answer.
    assert result["pairs_match"]
    # Reads outnumber nothing here, but latency must at least be sane:
    # the mixed load finished and produced a positive throughput.
    assert qps > 0

    benchmark(lambda: asyncio.run(_run_load()))
