"""Figure 11 — REUSE vs NO-REUSE exact Voronoi-cell computations in NM-CIJ."""

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.nm_cij import nm_cij


def test_fig11_reuse_of_voronoi_cells(benchmark, experiment_runner):
    vs_datasize = experiment_runner("fig11a")
    vs_ratio = experiment_runner("fig11b")

    def grouped(rows):
        table = {}
        for key, variant, computed, reused, size_p in rows:
            table.setdefault(key, {})[variant] = (computed, reused, size_p)
        return table

    for table in (grouped(vs_datasize.rows), grouped(vs_ratio.rows)):
        for key, variants in table.items():
            computed_reuse, reused, size_p = variants["REUSE"]
            computed_plain, reused_plain, _ = variants["NO-REUSE"]
            # REUSE never increases the number of exact cells computed and
            # actually reuses buffered cells; NO-REUSE reuses nothing.
            assert computed_reuse <= computed_plain
            assert reused > 0
            assert reused_plain == 0
            # Every candidate's cell is computed at least once, so both
            # variants are bounded below by |P| coverage of the join.
            assert computed_plain >= size_p

    # The REUSE benefit on redundant computations (the excess over |P|)
    # should be substantial at the largest datasize (paper: ~50%).
    table = grouped(vs_datasize.rows)
    largest = max(table)
    computed_reuse, _, size_p = table[largest]["REUSE"]
    computed_plain, _, _ = table[largest]["NO-REUSE"]
    redundant_reuse = computed_reuse - size_p
    redundant_plain = computed_plain - size_p
    if redundant_plain > 0:
        assert redundant_reuse <= 0.8 * redundant_plain

    # Benchmark the REUSE configuration end to end.
    points_p = uniform_points(250, seed=11)
    points_q = uniform_points(250, seed=21)

    def run_reuse():
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.02), points_p=points_p, points_q=points_q
        )
        return nm_cij(workload.tree_p, workload.tree_q, domain=workload.domain, reuse_cells=True)

    benchmark(run_reuse)
