"""Figure 9 — cardinality ratio effect (a) and output progressiveness (b)."""

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.fm_cij import fm_cij


def test_fig9a_cardinality_ratio(benchmark, experiment_runner):
    result = experiment_runner("fig9a")
    series = {}
    for ratio, algorithm, pages in result.rows:
        series.setdefault(algorithm, {})[ratio] = pages
    ratios = list(series["NM-CIJ"])
    for ratio in ratios:
        assert series["NM-CIJ"][ratio] <= series["PM-CIJ"][ratio]
        assert series["LB"][ratio] <= series["NM-CIJ"][ratio]
    # PM-CIJ materialises only P, so it gets cheaper as |P| shrinks
    # (ratio |Q|:|P| growing from 1:4 to 4:1).
    assert series["PM-CIJ"]["4:1"] < series["PM-CIJ"]["1:4"]

    # Benchmark index construction for an asymmetric 4:1 workload, the
    # setup cost this sweep varies.
    points_p = uniform_points(120, seed=9)
    points_q = uniform_points(480, seed=19)
    benchmark(
        lambda: build_workload(
            WorkloadConfig(buffer_fraction=0.02), points_p=points_p, points_q=points_q
        )
    )


def test_fig9b_output_progress(benchmark, experiment_runner):
    result = experiment_runner("fig9b")
    by_algorithm = {}
    for algorithm, pages, pairs in result.rows:
        by_algorithm.setdefault(algorithm, []).append((pages, pairs))
    # Non-blocking behaviour: NM-CIJ reports its first pairs within the
    # first quarter of its total I/O; FM-CIJ reports nothing until its
    # materialisation phase (the bulk of its cost) is over.
    nm = by_algorithm["NM-CIJ"]
    fm = by_algorithm["FM-CIJ"]
    nm_total = nm[-1][0]
    first_nm = next(pages for pages, pairs in nm if pairs > 0)
    first_fm = next(pages for pages, pairs in fm if pairs > 0)
    # NM-CIJ streams results: its first batch of pairs appears after the
    # first R_Q leaf is processed (a small fraction of its total I/O, and
    # far earlier than FM-CIJ, which must finish materialisation first).
    assert first_nm <= nm_total / 2
    assert first_nm < first_fm
    # Every curve ends with the same number of result pairs.
    finals = {algorithm: rows[-1][1] for algorithm, rows in by_algorithm.items()}
    assert len(set(finals.values())) == 1

    # Benchmark FM-CIJ (the blocking baseline) end to end.
    points_p = uniform_points(250, seed=9)
    points_q = uniform_points(250, seed=19)

    def run_fm():
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.02), points_p=points_p, points_q=points_q
        )
        return fm_cij(workload.tree_p, workload.tree_q, domain=workload.domain)

    benchmark(run_fm)
