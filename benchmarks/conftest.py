"""Shared configuration for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper through
the drivers in :mod:`repro.experiments`, prints the reproduced series,
writes it under ``benchmarks/results/`` and asserts the qualitative claim
the paper makes about it.  The ``benchmark`` fixture additionally times a
representative core operation so ``pytest-benchmark`` statistics are
collected for each artefact.

Besides the human-readable ``.txt`` table, every artefact is recorded as a
machine-readable ``.json`` document (same basename) so CI can diff the
deterministic counters against the committed baselines in
``benchmarks/baselines/`` — see ``benchmarks/bench_compare.py``.  Two JSON
shapes exist:

* ``kind: "table"`` — the rows/columns of an ``ExperimentResult``
  (written automatically by the ``experiment_runner`` fixture);
* ``kind: "counters"`` — a flat name→number mapping recorded explicitly by
  a benchmark through the ``bench_record`` fixture, for artefacts that are
  not experiment tables (sharded-executor recomputation counts, dynamic
  update deltas, prefetch hit/stall series...).

Only *deterministic* values belong in rows/counters; machine-dependent
measurements (wall clocks, stall seconds) go into the free-form ``info``
mapping, which the comparison script ignores.

The *committed* artefacts under ``benchmarks/results/`` carry only those
deterministic values: timing columns and the ``info`` mapping are split
off into an untracked sidecar under ``benchmarks/results/local/``
(gitignored) together with the human-readable ``.txt`` tables, so
re-running the suite leaves ``git status`` clean unless a gated counter
actually changed.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(``tiny`` by default so the whole suite completes in a few minutes; use
``small`` or ``medium`` to approach the shapes reported in EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from bench_compare import is_timing_column
from repro.experiments import run_experiment

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
#: Untracked sidecar for machine-dependent output: full documents with
#: their timing columns and ``info`` mappings, plus the ``.txt`` tables.
LOCAL_DIR = RESULTS_DIR / "local"


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with the ``bench`` marker.

    The fast tier can then exclude the whole artefact suite with
    ``pytest -m "not bench"`` (see pytest.ini); CI runs the benchmarks in a
    separate, non-blocking job.
    """
    for item in items:
        if BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)

#: Benchmark scale; see repro.experiments.harness.SCALES.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


def _deterministic_view(document: dict) -> dict:
    """The committed projection of a document: gated values only.

    Tables lose their timing columns, counters documents lose ``info`` —
    exactly the values ``bench_compare`` never gates, so the projection
    changes nothing about the baseline comparison while keeping
    machine-dependent churn out of the tracked tree.
    """
    slim = dict(document)
    if document.get("kind") == "counters":
        slim.pop("info", None)
        return slim
    columns = document.get("columns", [])
    keep = [i for i, column in enumerate(columns) if not is_timing_column(column)]
    if len(keep) == len(columns):
        return slim
    slim["columns"] = [columns[i] for i in keep]
    slim["rows"] = [
        [row[i] for i in keep if i < len(row)] for row in document.get("rows", [])
    ]
    return slim


def write_result_json(name: str, document: dict) -> Path:
    """Persist one machine-readable artefact under ``benchmarks/results/``.

    The tracked file carries only the deterministic values; the full
    document (timings and ``info`` included) goes to the untracked
    ``results/local/`` sidecar.
    """
    LOCAL_DIR.mkdir(parents=True, exist_ok=True)
    (LOCAL_DIR / f"{name}.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(_deterministic_view(document), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The scale name every benchmark should run its experiment at."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def experiment_runner():
    """Run an experiment once per session and persist its rendered table
    (``.txt`` for humans under ``results/local/``, ``.json`` for the CI
    baseline gate)."""
    cache = {}

    def run(experiment_id: str):
        if experiment_id not in cache:
            result = run_experiment(experiment_id, scale=BENCH_SCALE)
            LOCAL_DIR.mkdir(parents=True, exist_ok=True)
            path = LOCAL_DIR / f"{experiment_id}.txt"
            path.write_text(result.to_text() + "\n", encoding="utf-8")
            write_result_json(
                experiment_id,
                {
                    "name": experiment_id,
                    "kind": "table",
                    "scale": BENCH_SCALE,
                    "title": result.title,
                    "columns": result.columns,
                    "rows": result.rows,
                },
            )
            print()
            print(result.to_text())
            cache[experiment_id] = result
        return cache[experiment_id]

    return run


@pytest.fixture(scope="session")
def bench_record():
    """Record a non-table artefact's deterministic counters as JSON.

    ``bench_record(name, counters, info=None)`` — ``counters`` values must
    be reproducible run to run (operation counts, page accesses, hit
    counts); put timings and other machine-dependent measurements into
    ``info``, which the baseline comparison ignores.
    """

    def record(name: str, counters: dict, info: dict | None = None) -> Path:
        return write_result_json(
            name,
            {
                "name": name,
                "kind": "counters",
                "scale": BENCH_SCALE,
                "counters": counters,
                "info": info or {},
            },
        )

    return record
