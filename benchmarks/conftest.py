"""Shared configuration for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper through
the drivers in :mod:`repro.experiments`, prints the reproduced series,
writes it under ``benchmarks/results/`` and asserts the qualitative claim
the paper makes about it.  The ``benchmark`` fixture additionally times a
representative core operation so ``pytest-benchmark`` statistics are
collected for each artefact.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(``tiny`` by default so the whole suite completes in a few minutes; use
``small`` or ``medium`` to approach the shapes reported in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with the ``bench`` marker.

    The fast tier can then exclude the whole artefact suite with
    ``pytest -m "not bench"`` (see pytest.ini); CI runs the benchmarks in a
    separate, non-blocking job.
    """
    for item in items:
        if BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)

#: Benchmark scale; see repro.experiments.harness.SCALES.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The scale name every benchmark should run its experiment at."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def experiment_runner():
    """Run an experiment once per session and persist its rendered table."""
    cache = {}

    def run(experiment_id: str):
        if experiment_id not in cache:
            result = run_experiment(experiment_id, scale=BENCH_SCALE)
            RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            path = RESULTS_DIR / f"{experiment_id}.txt"
            path.write_text(result.to_text() + "\n", encoding="utf-8")
            print()
            print(result.to_text())
            cache[experiment_id] = result
        return cache[experiment_id]

    return run
