"""Ablation benches: design choices the paper asserts but does not plot."""

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.batch import compute_cells_for_leaf


def test_ablation_visit_order(benchmark, experiment_runner):
    """Best-first vs depth-first entry ordering inside BF-VOR."""
    result = experiment_runner("ablation_visit_order")
    accesses = {row[0]: row[2] for row in result.rows}
    assert accesses["best-first"] <= accesses["depth-first"]

    from repro.voronoi.single import compute_voronoi_cell

    points = uniform_points(500, seed=20)
    tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
    benchmark(
        lambda: compute_voronoi_cell(
            tree, points[42], DOMAIN, site_oid=42, visit_order="depth-first"
        )
    )


def test_ablation_phi_pruning(benchmark, experiment_runner):
    """NM-CIJ with the Lemma-3 Φ pruning rule on vs off."""
    result = experiment_runner("ablation_phi")
    pages = {row[0]: row[1] for row in result.rows}
    pairs = {row[2] for row in result.rows}
    assert len(pairs) == 1  # pruning never changes the result
    assert pages["with Φ pruning"] <= pages["without Φ pruning"]

    from repro.join.conditional_filter import batch_conditional_filter
    from repro.voronoi.diagram import brute_force_cell

    points_p = uniform_points(500, seed=21)
    points_q = uniform_points(40, seed=31)
    tree_p = build_indexed_pointset(DiskManager(), "RP", points_p, domain=DOMAIN)
    targets = [brute_force_cell(q, points_q, DOMAIN).polygon for q in points_q[:8]]
    benchmark(
        lambda: batch_conditional_filter(targets, tree_p, DOMAIN, use_phi_pruning=False)
    )


def test_ablation_batch_vs_single(benchmark, experiment_runner):
    """BatchVoronoi vs per-point BF-VOR for the cells of one leaf."""
    result = experiment_runner("ablation_batch")
    accesses = {row[0]: row[2] for row in result.rows}
    assert accesses["BATCH"] <= accesses["SINGLE"]
    # The I/O saving is the point of Algorithm 2; the CPU saving only shows
    # at larger leaf populations (paper Figure 6b), so it is not asserted.

    points = uniform_points(500, seed=22)
    tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
    leaf = next(tree.iter_leaf_nodes(order="hilbert"))
    benchmark(lambda: compute_cells_for_leaf(tree, leaf.entries, DOMAIN))
