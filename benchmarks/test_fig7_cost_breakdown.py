"""Figure 7 — MAT/JOIN cost breakdown of FM-CIJ, PM-CIJ and NM-CIJ."""

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.nm_cij import nm_cij


def test_fig7_cost_breakdown(benchmark, experiment_runner):
    result = experiment_runner("fig7")
    rows = {row[0]: row for row in result.rows}
    # (a) I/O: NM saves all materialisation and wins overall; PM beats FM.
    assert rows["NM-CIJ"][1] == 0
    assert rows["NM-CIJ"][3] < rows["PM-CIJ"][3] < rows["FM-CIJ"][3]
    # All three algorithms report the same number of result pairs.
    assert rows["NM-CIJ"][6] == rows["PM-CIJ"][6] == rows["FM-CIJ"][6]
    # (b) CPU: NM-CIJ is the most CPU-intensive of the three (the paper
    # reports a 10-20% gap).  Asserted on the deterministic operation
    # counter — heap pops, clips and point examinations across the Voronoi
    # and filter phases — because wall-clock comparisons are load-dependent
    # and flaky when the suite runs under contention.
    assert rows["NM-CIJ"][7] >= rows["FM-CIJ"][7]
    assert rows["NM-CIJ"][7] >= rows["PM-CIJ"][7]

    # Benchmark the winning algorithm end to end on a small workload.
    points_p = uniform_points(250, seed=7)
    points_q = uniform_points(250, seed=17)

    def run_nm():
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.02), points_p=points_p, points_q=points_q
        )
        return nm_cij(workload.tree_p, workload.tree_q, domain=workload.domain)

    benchmark(run_nm)
