"""Figure 5 — BF-VOR vs TP-VOR cost of individual Voronoi-cell queries."""

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.single import compute_voronoi_cell


def test_fig5_single_cell_queries(benchmark, experiment_runner):
    result = experiment_runner("fig5")
    rows = {row[0]: row for row in result.rows}
    # Paper claim: BF-VOR needs clearly fewer node accesses than TP-VOR and
    # is more stable across query instances.
    assert rows["BF-VOR"][2] < rows["TP-VOR"][2]
    assert rows["BF-VOR"][3] <= rows["TP-VOR"][3]

    # Benchmark the core operation: one exact BF-VOR cell computation.
    points = uniform_points(600, seed=5)
    tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
    benchmark(lambda: compute_voronoi_cell(tree, points[123], DOMAIN, site_oid=123))
