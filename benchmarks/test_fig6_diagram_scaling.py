"""Figure 6 — Voronoi diagram construction (ITER vs BATCH vs LB) vs datasize."""

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import compute_voronoi_diagram


def test_fig6_diagram_scaling(benchmark, experiment_runner):
    result = experiment_runner("fig6")
    by_size = {}
    for datasize, method, pages, heap_pops, clip_ops, _cpu in result.rows:
        by_size.setdefault(datasize, {})[method] = (pages, heap_pops, clip_ops)
    for datasize, methods in by_size.items():
        # Paper claims: both index-driven builders stay close to LB in I/O,
        # and BATCH never does worse than ITER.
        assert methods["LB"][0] <= methods["BATCH"][0] <= methods["ITER"][0]
        # The CPU claim (Figure 6b: BATCH wins, increasingly with datasize)
        # is asserted on the deterministic work counters, not on wall-clock
        # time, which is load-dependent and made this test flaky under a
        # full parallel suite: one best-first traversal per leaf group pops
        # far fewer heap entries than one traversal per point.
        assert methods["BATCH"][1] <= methods["ITER"][1]
    largest = max(by_size)
    # The traversal saving must be substantial at the largest size, not a
    # rounding artefact: BATCH pops at most half of ITER's heap entries.
    assert by_size[largest]["BATCH"][1] <= by_size[largest]["ITER"][1] * 0.5

    # Benchmark: BATCH diagram construction on a fixed-size input.
    points = uniform_points(400, seed=6)
    tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
    benchmark(lambda: compute_voronoi_diagram(tree, DOMAIN, strategy="batch"))
