"""Figure 10 — false-hit ratio of the NM-CIJ filter step."""

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.join.conditional_filter import batch_conditional_filter
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import brute_force_cell


def test_fig10_false_hit_ratio(benchmark, experiment_runner):
    vs_datasize = experiment_runner("fig10a")
    vs_ratio = experiment_runner("fig10b")
    # Paper claim: the FHR stays low (well below 0.1 in the paper; we allow
    # head-room for the much smaller inputs) and does not explode with the
    # datasize.
    for row in vs_datasize.rows:
        assert row[3] < 0.3
    for row in vs_ratio.rows:
        assert row[3] < 0.5
    # The ratio-sweep trend: small |Q|:|P| (large P) has the largest FHR.
    by_ratio = {row[0]: row[3] for row in vs_ratio.rows}
    assert by_ratio["1:4"] >= by_ratio["4:1"] - 0.05

    # Benchmark the filter step itself: one batch of target cells probed
    # against the R-tree of P.
    points_p = uniform_points(600, seed=10)
    points_q = uniform_points(40, seed=20)
    tree_p = build_indexed_pointset(DiskManager(), "RP", points_p, domain=DOMAIN)
    targets = [brute_force_cell(q, points_q, DOMAIN).polygon for q in points_q[:10]]
    benchmark(lambda: batch_conditional_filter(targets, tree_p, DOMAIN))
