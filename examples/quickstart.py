#!/usr/bin/env python3
"""Quickstart: compute a Common Influence Join on two synthetic pointsets.

The common influence join CIJ(P, Q) returns every pair (p, q) such that some
location is simultaneously closer to p than to any other point of P and
closer to q than to any other point of Q — i.e. their Voronoi cells overlap.
Unlike an ε-distance join or a k-closest-pairs join it needs no parameter.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DOMAIN,
    brute_force_cij,
    common_influence_join,
    epsilon_distance_join,
    uniform_points,
)
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.engine import EngineConfig, JoinEngine


def main() -> None:
    # Two synthetic pointsets in the paper's [0, 10000] x [0, 10000] domain.
    restaurants = uniform_points(400, seed=1)
    cinemas = uniform_points(300, seed=2)

    print("=== Common Influence Join, NM-CIJ (the paper's best algorithm) ===")
    result = common_influence_join(restaurants, cinemas, method="nm")
    stats = result.stats
    print(f"input sizes      : |P| = {len(restaurants)}, |Q| = {len(cinemas)}")
    print(f"result pairs     : {len(result.pairs)}")
    print(f"page accesses    : {stats.total_page_accesses}")
    print(f"CPU seconds      : {stats.total_cpu_seconds:.2f}")
    print(f"false hit ratio  : {stats.false_hit_ratio:.3f}")
    print(f"first 5 pairs    : {result.pairs[:5]}")
    print()

    print("=== Comparing the three algorithms of the paper ===")
    for method in ("fm", "pm", "nm"):
        run = common_influence_join(restaurants, cinemas, method=method)
        s = run.stats
        print(
            f"{s.algorithm:7s}  pairs={len(run.pairs):6d}  "
            f"pages={s.total_page_accesses:6d} "
            f"(MAT {s.mat_page_accesses} + JOIN {s.join_page_accesses})  "
            f"cpu={s.total_cpu_seconds:5.2f}s"
        )
    print()

    print("=== The JoinEngine: one entry point, pluggable executors ===")
    # Every algorithm above ran through repro.engine under the hood.  Using
    # the engine directly gives access to the execution knobs and to the
    # per-phase work counters the convenience wrappers hide.
    engine = JoinEngine()
    workload = build_workload(WorkloadConfig(), points_p=restaurants, points_q=cinemas)
    result = engine.run("nm", workload.tree_p, workload.tree_q, domain=workload.domain)
    print(f"registered algorithms : {engine.algorithm_names()}")
    print(f"serial NM-CIJ pairs   : {len(result.pairs)}")
    print(f"Voronoi clip ops      : {result.cell_stats.refinements}")
    print(f"filter heap pops      : {result.filter_stats.heap_pops}")
    print()

    print("=== Parallel quickstart: sharded execution (every CIJ variant) ===")
    # The sharded executor partitions the algorithm's shard units across
    # worker processes: Q's Hilbert-ordered leaves for NM/PM, top-level
    # R'_P partitions of the synchronous traversal for FM.  The pair list
    # is byte-identical to the serial run in every case.
    config = EngineConfig(executor="sharded", workers=4)
    workload = build_workload(WorkloadConfig(), points_p=restaurants, points_q=cinemas)
    sharded = engine.run(
        "nm", workload.tree_p, workload.tree_q, config, domain=workload.domain
    )
    print(f"sharded NM-CIJ pairs  : {len(sharded.pairs)} "
          f"(identical to serial: {sharded.pairs == result.pairs})")
    print(f"P-cells recomputed    : serial {result.stats.cells_computed_p}, "
          f"sharded {sharded.stats.cells_computed_p}")
    workload = build_workload(WorkloadConfig(), points_p=restaurants, points_q=cinemas)
    sharded_fm = engine.run(
        "fm", workload.tree_p, workload.tree_q, config, domain=workload.domain
    )
    print(f"sharded FM-CIJ pairs  : {len(sharded_fm.pairs)} "
          f"(the synchronous traversal shards by top-level R'_P entries)")
    print()

    print("=== Shard-boundary REUSE handoff ===")
    # By default parallel shards are independent, so NM recomputes the
    # P-cells the REUSE buffer would have carried across shard boundaries.
    # reuse_handoff="always" chains shard k's final buffer into shard k+1,
    # restoring the exact serial reuse accounting (work-optimal; under
    # fork the shards then run as a pipeline rather than in parallel).
    config = EngineConfig(executor="sharded", workers=4, reuse_handoff="always")
    workload = build_workload(WorkloadConfig(), points_p=restaurants, points_q=cinemas)
    handoff = engine.run(
        "nm", workload.tree_p, workload.tree_q, config, domain=workload.domain
    )
    print(f"handoff NM-CIJ pairs  : {len(handoff.pairs)} "
          f"(identical to serial: {handoff.pairs == result.pairs})")
    print(f"P-cells recomputed    : serial {result.stats.cells_computed_p}, "
          f"handoff {handoff.stats.cells_computed_p} (equal again)")
    print()

    print("=== Distributed quickstart: coordinator + node subprocesses ===")
    # executor="distributed" runs the same work units on separate node
    # interpreters (python -m repro.engine.node): the coordinator hands
    # units out on demand over an NDJSON pipe protocol — a worker stuck on
    # an expensive unit simply stops pulling while the others drain the
    # queue — and each node reopens the run's on-disk backend read-only
    # (so storage="file" or "sqlite" is required; memory is rejected).
    # Results merge in unit order: pairs, JoinStats and the deterministic
    # counters are byte-identical to the serial run, REUSE accounting
    # included (the distributed NM chains the handoff by default).
    dist_workload = build_workload(
        WorkloadConfig(storage="file"), points_p=restaurants, points_q=cinemas
    )
    with dist_workload:
        distributed = engine.run(
            "nm",
            dist_workload.tree_p,
            dist_workload.tree_q,
            EngineConfig(executor="distributed", nodes=2, storage="file"),
            domain=dist_workload.domain,
        )
    trace = engine.last_executor.last_assignments
    print(f"distributed NM pairs  : {len(distributed.pairs)} "
          f"(identical to serial: {distributed.pairs == result.pairs})")
    print(f"P-cells recomputed    : serial {result.stats.cells_computed_p}, "
          f"distributed {distributed.stats.cells_computed_p} (equal)")
    print(f"units per node        : "
          + ", ".join(f"{node} -> {len(ids)}" for node, ids in sorted(trace.items())))
    # NM's chained handoff serializes the handout (unit k+1 waits for unit
    # k's REUSE carry), so one node may well serve most units here; run a
    # carry-free method (pm/fm) or reuse_handoff="never" to see the pull
    # loop spread units across nodes.
    # From a shell, the same run is:
    #     python -m repro.cli join --storage file --executor distributed --nodes 2
    print()

    print("=== Fault tolerance: nodes may crash, hang, or join late ===")
    # The distributed tier leases units instead of consuming them: a node
    # that dies (or goes silent past node_timeout) is quarantined, its
    # leased unit goes back to the queue, and a surviving node re-runs it
    # — up to node_retries extra attempts per unit.  The run starts once
    # node_min_ready nodes are up (late nodes join the pull loop mid-run)
    # and degrades gracefully down to a single survivor.  fault_plan
    # injects deterministic failures to prove all of this: here node-1 is
    # killed (SIGKILL-equivalent) the moment it starts its first unit.
    # The invariant is absolute: pairs and every deterministic counter
    # stay byte-identical to the serial run no matter which faults fire —
    # fault accounting lives on the executor, never in JoinStats.
    fault_workload = build_workload(
        WorkloadConfig(storage="file"), points_p=restaurants, points_q=cinemas
    )
    with fault_workload:
        faulted = engine.run(
            "pm",
            fault_workload.tree_p,
            fault_workload.tree_q,
            EngineConfig(
                executor="distributed",
                nodes=2,
                storage="file",
                node_timeout=10.0,
                node_retries=2,
                fault_plan="crash@node-1:after=0",
            ),
            domain=fault_workload.domain,
        )
    # Capture the report before the serial baseline below replaces
    # engine.last_executor.
    report = engine.last_executor.last_run_report
    pm_workload = build_workload(
        WorkloadConfig(), points_p=restaurants, points_q=cinemas
    )
    serial_pm = engine.run(
        "pm", pm_workload.tree_p, pm_workload.tree_q, domain=pm_workload.domain
    )
    print(f"faulted PM pairs      : {len(faulted.pairs)} "
          f"(identical to serial: {faulted.pairs == serial_pm.pairs})")
    print(f"quarantined nodes     : {report['quarantined']}")
    print(f"units retried         : {report['retries']}")
    # From a shell:
    #     python -m repro.cli join --storage file --executor distributed \
    #         --nodes 2 --node-retries 2 --fault-plan 'crash@node-1:after=0'
    print()

    print("=== Remote storage: a page server instead of a shared filesystem ===")
    # storage="remote" moves the backing store behind a page-server process
    # that owns the file (or SQLite database) and serves read_page over the
    # same NDJSON framing as repro.service — so distributed nodes no longer
    # need to share a local filesystem with the coordinator: each one opens
    # its own socket to the server.  The node-side LRU buffer and decoded-
    # page cache stay in front of the wire, which keeps the paper's logical
    # page counters byte-identical to the serial run; the physical RPC
    # traffic is reported separately in storage_stats().  Over a remote
    # store the coordinator also piggybacks peek-ahead hints on unit
    # assignments, so nodes stage upcoming units' pages with one batched
    # read_batch RPC while they compute — visible below as prefetch stats.
    from repro.storage.pageserver import spawn_page_server

    server = spawn_page_server(backing="file")
    try:
        remote_workload = build_workload(
            WorkloadConfig(
                storage="remote", storage_path=f"{server.host}:{server.port}"
            ),
            points_p=restaurants,
            points_q=cinemas,
        )
        with remote_workload:
            remote = engine.run(
                "nm",
                remote_workload.tree_p,
                remote_workload.tree_q,
                EngineConfig(executor="distributed", nodes=2, storage="remote"),
                domain=remote_workload.domain,
            )
            io = remote_workload.disk.storage_stats()
            print(f"remote NM pairs       : {len(remote.pairs)} "
                  f"(identical to serial: {remote.pairs == result.pairs})")
            print(f"pages staged on nodes : {io.extra.get('worker_bytes_prefetched', 0)}"
                  f" bytes ahead of demand, over "
                  f"{io.extra.get('worker_snapshots', 0)} node snapshot(s)")
            print(f"coordinator RPCs      : {io.extra.get('rpc_calls', 0)} "
                  f"({io.extra.get('batch_rpcs', 0)} batched)")
    finally:
        server.stop()
    # From two shells — no shared filesystem needed between them:
    #     python -m repro.storage.pageserver --backing file --port 9321
    #     python -m repro.cli join --page-server 127.0.0.1:9321 \
    #         --executor distributed --nodes 2
    # (--storage remote+sqlite spawns a private SQLite-backed server when
    # no --page-server address is given.)
    print()

    # Boundary ties: a pair joins only when the two influence regions
    # overlap with positive area.  Cells that merely touch (zero-area
    # contact, e.g. exactly colinear bisectors) are excluded — by the
    # brute-force oracle and all three algorithms alike.

    print("=== Array-native kernels: --compute kernel ===")
    # EngineConfig.compute selects the hot-loop implementation: "scalar"
    # (pure Python, the oracle) or "kernel" (vectorised NumPy re-writes of
    # bisector construction, nearest-first clipping and the SAT tests).
    # The kernels are written for *bit-identical* floats, so pairs, every
    # JoinStats/CellComputationStats/FilterStats counter and all page
    # accounting are byte-equal between the modes — pinned by the
    # differential suite in tests/engine/test_compute_equivalence.py.
    # The CLI flag is --compute kernel; $REPRO_COMPUTE sets the default.
    #
    # Honest before/after, from benchmarks/results/fig7.txt (tiny scale):
    #
    #   algorithm     | total pages | JOIN CPU (s) | pairs | CPU ops
    #   NM-CIJ        |          40 |        0.144 |   637 |   4,312
    #   NM-CIJ/kernel |          40 |        0.186 |   637 |   4,312
    #
    # End to end the kernel mode is parity within measurement noise: the
    # bit-identity contract pins the exact clip/prune sequence, so the
    # kernels can only make each decision cheaper, never skip one — and on
    # the ~6-vertex rings this workload produces, NumPy's per-call dispatch
    # gives back most of what the batched arithmetic wins (isolated inner
    # loops measure up to ~2x).  Use it as the foundation for genuinely
    # batched work (bigger leaves, fatter groups), not as a free speedup.
    workload = build_workload(WorkloadConfig(), points_p=restaurants, points_q=cinemas)
    kernel_run = engine.run(
        "nm",
        workload.tree_p,
        workload.tree_q,
        EngineConfig(compute="kernel"),
        domain=workload.domain,
    )
    print(f"kernel NM-CIJ pairs   : {len(kernel_run.pairs)} "
          f"(identical to scalar: {kernel_run.pairs == result.pairs})")
    print(f"Voronoi clip ops      : {kernel_run.cell_stats.refinements} "
          f"(identical to scalar: "
          f"{kernel_run.cell_stats.refinements == result.cell_stats.refinements})")
    print()

    # Numeric tolerance policy: every geometric predicate — scalar and
    # kernel alike — reads its epsilon from repro.geometry.tolerance
    # (BOUNDARY_EPS for clipping/SAT/containment, CONTAINMENT_EPS for the
    # Φ distance test, TIE_SLACK for dynamic invalidation).  One shared
    # set of constants is what makes "bit-identical" well-defined: a
    # point near a clip boundary must get the same verdict from
    # Halfplane.contains, polygon clipping and the SAT interior test,
    # whichever implementation computed it.  See the module docstring of
    # src/repro/geometry/tolerance.py for the full policy.

    print("=== File-backed storage: pages live on a real disk ===")
    # The same join can run with every R-tree page serialized into a single
    # binary file (or an SQLite database with storage="sqlite").  Buffer
    # misses then move real bytes, so datasets larger than the LRU buffer —
    # or than RAM — keep the paper's exact page-access accounting.
    file_workload = build_workload(
        WorkloadConfig(storage="file"), points_p=restaurants, points_q=cinemas
    )
    with file_workload:
        file_result = engine.run(
            "nm",
            file_workload.tree_p,
            file_workload.tree_q,
            domain=file_workload.domain,
        )
        io = file_workload.disk.storage_stats()
        print(f"backend               : {file_workload.disk.storage_backend}")
        print(f"pairs (same as memory): {file_result.pairs == result.pairs}")
        print(f"bytes read from file  : {io.bytes_read}")
        print(f"bytes written to file : {io.bytes_written}")
    print()

    print("=== Overlapped I/O: prefetching hides disk latency ===")
    # With prefetch="next_batch" the engine issues the next leaf batch's
    # candidate page reads (planned through an uncounted MBR descent)
    # while the current batch computes its Voronoi cells, on the file
    # backend's async reader thread.  A simulated 1 ms/page service time
    # makes the effect visible: stalled time drops, the hidden remainder
    # shows up as overlap.  Pairs and the paper's logical page accounting
    # are byte-identical to the synchronous run above.
    for mode in ("off", "next_batch"):
        prefetch_workload = build_workload(
            WorkloadConfig(storage="file", fetch_latency=0.001),
            points_p=restaurants,
            points_q=cinemas,
        )
        with prefetch_workload:
            run = engine.run(
                "nm",
                prefetch_workload.tree_p,
                prefetch_workload.tree_q,
                domain=prefetch_workload.domain,
                prefetch=mode,
            )
            io = run.storage
            print(
                f"prefetch={mode:10s} pairs={len(run.pairs)} "
                f"pages={run.stats.total_page_accesses} "
                f"issued={io.pages_prefetched} hits={io.prefetch_hits} "
                f"stalled={io.stall_time * 1000:6.1f} ms "
                f"overlapped={io.overlap_time * 1000:5.1f} ms"
            )
    print()

    print("=== Dynamic workloads: incremental updates to P and Q ===")
    # A DynamicJoinSession keeps the join answer current under insert/
    # delete streams: only cells whose nearest-neighbour set can change
    # (bounded by the Lemma-1 influence radius) are recomputed, and only
    # pairs incident to those dirty cells are re-evaluated.  Each batch
    # returns the exact pair delta.
    from repro import Point, Update, UpdateBatch

    workload = build_workload(WorkloadConfig(), points_p=restaurants, points_q=cinemas)
    session = engine.open_dynamic(workload.tree_p, workload.tree_q, domain=workload.domain)
    print(f"initial pairs         : {len(session.pairs)}")
    delta = session.apply_updates(UpdateBatch([
        Update("insert", "P", 900, Point(4300.0, 5200.0)),   # a new restaurant
        Update("insert", "Q", 901, Point(4350.0, 5100.0)),   # a new cinema
        Update("delete", "Q", 0),                            # one cinema closes
    ]))
    print(f"pair delta            : +{len(delta.added)} / -{len(delta.removed)} "
          f"(e.g. added {delta.added[:3]})")
    print(f"cells invalidated     : {delta.stats.cells_invalidated} of "
          f"{session.point_count('P') + session.point_count('Q')} "
          f"(a rebuild would recompute all of them)")
    check = engine.run("nm", workload.tree_p, workload.tree_q, domain=workload.domain)
    print(f"equals a fresh rebuild: {session.pair_set() == check.pair_set()}")
    print()

    print("=== Serving the join: python -m repro.cli serve ===")
    # The same warm DynamicJoinSession can be owned by a long-running
    # asyncio server and shared by many clients over newline-delimited
    # JSON.  From a shell::
    #
    #     python -m repro.cli serve --port 8900 --storage file \
    #         --storage-path /tmp/cij-pages
    #
    # then each line sent to the socket is one request: {"op": "join"},
    # {"op": "window", "window": [x0, y0, x1, y1]} (a ConditionalFilter
    # sub-rectangle descent), {"op": "update", "updates": ["insert P 900
    # 4300 5200", ...]} (the delta-CIJ path; the response carries the
    # exact pair delta), {"op": "stats"}, {"op": "subscribe"} (pushes a
    # "delta" event line on every update).  Reads are served from an
    # immutable snapshot while one writer per dataset applies batches, so
    # concurrent clients always see a consistent version — every response
    # is byte-equal to a serial replay (enforced by tests/service/).
    import asyncio

    from repro.service import DatasetSpec, JoinService, ServiceClient

    async def serve_demo() -> None:
        service = JoinService([DatasetSpec(n_p=200, n_q=200, seed=5)])
        host, port = await service.start()
        try:
            async with await ServiceClient.connect(host, port) as conn:
                await conn.subscribe()
                joined = await conn.join()
                print(f"served join           : version {joined['version']}, "
                      f"{len(joined['pairs'])} pairs")
                windowed = await conn.window([2000.0, 2000.0, 6000.0, 6000.0])
                print(f"window [2000,6000]^2  : {len(windowed['pairs'])} pairs "
                      f"whose common region meets the window")
                updated = await conn.update(
                    ["insert P 900 4300 5200", "insert Q 901 4350 5100"]
                )
                print(f"update batch          : version {updated['version']}, "
                      f"+{len(updated['added'])} / -{len(updated['removed'])} pairs")
                event = await conn.next_event()
                print(f"streamed delta event  : {event['event']} "
                      f"v{event['version']} (+{len(event['added'])})")
        finally:
            await service.close()

    asyncio.run(serve_demo())
    print()

    print("=== Why CIJ is not a distance join ===")
    # The smallest ε for which the ε-distance join contains the CIJ result
    # would have to reach the most distant CIJ pair — which can be huge —
    # while a small ε misses legitimate CIJ pairs entirely.
    small = uniform_points(40, seed=3)
    other = uniform_points(35, seed=4)
    cij_pairs = brute_force_cij(small, other, DOMAIN).pair_set()
    workload = build_workload(WorkloadConfig(), points_p=small, points_q=other)
    epsilon = 1200.0
    distance_pairs = {
        (p, q) for p, q, _ in epsilon_distance_join(workload.tree_p, workload.tree_q, epsilon)
    }
    only_cij = cij_pairs - distance_pairs
    only_distance = distance_pairs - cij_pairs
    print(f"CIJ pairs                      : {len(cij_pairs)}")
    print(f"ε-distance pairs (ε={epsilon:.0f})   : {len(distance_pairs)}")
    print(f"CIJ pairs missed by ε-join     : {len(only_cij)}")
    print(f"ε-join pairs that are not CIJ  : {len(only_distance)}")
    print("Neither result contains the other: the two operators answer different questions.")


if __name__ == "__main__":
    main()
