#!/usr/bin/env python3
"""Decision support and customised multi-objective search over CIJ results.

Two further applications from the paper's introduction:

* **Decision support** — an investor must pick one cinema to take over.  For
  every cinema q, the restaurants joining with q in CIJ(P, Q) describe the
  neighbourhood a movie-goer of q experiences; aggregating their ratings
  scores each cinema's surroundings without any distance threshold.
* **Customised multi-objective search** — a tourist office wants the common
  influence regions R(p, q) where both the restaurant and the cinema are
  rated at least four stars, to recommend hotels inside those regions.

Run with::

    python examples/decision_support.py
"""

import random

from repro import clustered_points
from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.nm_cij import nm_cij
from repro.voronoi.diagram import compute_voronoi_diagram


def main() -> None:
    rng = random.Random(31)
    restaurants = clustered_points(200, clusters=7, seed=31)
    cinemas = clustered_points(30, clusters=5, seed=32)
    # Attribute data attached to the spatial objects (1.0 - 5.0 star ratings).
    restaurant_rating = {oid: round(rng.uniform(1.0, 5.0), 1) for oid in range(len(restaurants))}
    cinema_rating = {oid: round(rng.uniform(1.0, 5.0), 1) for oid in range(len(cinemas))}

    workload = build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=restaurants, points_q=cinemas
    )
    result = nm_cij(workload.tree_p, workload.tree_q, domain=DOMAIN)
    print(f"restaurants={len(restaurants)}, cinemas={len(cinemas)}, CIJ pairs={len(result.pairs)}\n")

    # ------------------------------------------------------------------
    # Decision support: score each cinema by its joined restaurants.
    # ------------------------------------------------------------------
    partners = {}
    for p_oid, q_oid in result.pairs:
        partners.setdefault(q_oid, []).append(p_oid)
    scores = []
    for q_oid, restaurant_ids in partners.items():
        ratings = [restaurant_rating[p] for p in restaurant_ids]
        scores.append((sum(ratings) / len(ratings), q_oid, len(restaurant_ids)))
    scores.sort(reverse=True)
    print("cinemas ranked by the average rating of their common-influence restaurants")
    print("rank  cinema  avg restaurant rating  #joined restaurants  cinema's own rating")
    for rank, (avg, q_oid, count) in enumerate(scores[:5], start=1):
        print(f"{rank:4d}  {q_oid:6d}  {avg:21.2f}  {count:19d}  {cinema_rating[q_oid]:6.1f}")
    worst = scores[-1]
    print(f"\nleast attractive neighbourhood: cinema {worst[1]} "
          f"(avg joined-restaurant rating {worst[0]:.2f}) — the investor may skip it.\n")

    # ------------------------------------------------------------------
    # Customised multi-objective search: filter CIJ pairs by attributes.
    # ------------------------------------------------------------------
    qualified = [
        (p_oid, q_oid)
        for p_oid, q_oid in result.pairs
        if restaurant_rating[p_oid] >= 4.0 and cinema_rating[q_oid] >= 4.0
    ]
    print(f"CIJ pairs where both venues are rated >= 4.0 stars: {len(qualified)}")
    with workload.disk.suspend_io_accounting():
        diagram_p = compute_voronoi_diagram(workload.tree_p, DOMAIN)
        diagram_q = compute_voronoi_diagram(workload.tree_q, DOMAIN)
    print("recommended hotel-search regions (centroid and area of R(p, q)):")
    for p_oid, q_oid in qualified[:5]:
        region = diagram_p.cell_of(p_oid).common_region(diagram_q.cell_of(q_oid))
        if region.is_empty():
            continue
        centre = region.centroid()
        print(
            f"  restaurant {p_oid:3d} ({restaurant_rating[p_oid]:.1f}*) + "
            f"cinema {q_oid:3d} ({cinema_rating[q_oid]:.1f}*) -> "
            f"centre ({centre.x:6.0f}, {centre.y:6.0f}), area {region.area():10.0f}"
        )


if __name__ == "__main__":
    main()
