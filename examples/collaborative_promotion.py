#!/usr/bin/env python3
"""Collaborative promotion: the paper's motivating marketing application.

A set of restaurants P and a set of cinemas Q operate in the same city.  An
advertisement company computes CIJ(P, Q) and, for every joined pair (p, q),
targets the residents living inside the *common influence region*
R(p, q) = V(p, P) ∩ V(q, Q): those residents have p as their most convenient
restaurant and q as their most convenient cinema, so a joint promotion
("dinner discount at p for movie-goers of q") reaches exactly the right
audience.

The script

1. generates clustered restaurants/cinemas and a population of residents,
2. runs NM-CIJ,
3. reconstructs the common influence region of every result pair,
4. ranks the pairs by the number of residents inside their region, and
5. prints the best campaigns.

Run with::

    python examples/collaborative_promotion.py
"""

from repro import clustered_points, uniform_points
from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.nm_cij import nm_cij
from repro.voronoi.diagram import compute_voronoi_diagram


def main() -> None:
    restaurants = clustered_points(150, clusters=6, seed=11)
    cinemas = clustered_points(60, clusters=4, seed=12)
    residents = uniform_points(4000, seed=13)

    workload = build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=restaurants, points_q=cinemas
    )
    result = nm_cij(workload.tree_p, workload.tree_q, domain=DOMAIN)
    print(f"restaurants={len(restaurants)}, cinemas={len(cinemas)}, CIJ pairs={len(result.pairs)}")
    print(f"page accesses: {result.stats.total_page_accesses}\n")

    # Reconstruct both Voronoi diagrams once to obtain the region polygons.
    # (The join itself never needs the full diagrams; this post-processing is
    # part of the application, not of the operator.)
    with workload.disk.suspend_io_accounting():
        diagram_p = compute_voronoi_diagram(workload.tree_p, DOMAIN)
        diagram_q = compute_voronoi_diagram(workload.tree_q, DOMAIN)

    campaigns = []
    for p_oid, q_oid in result.pairs:
        region = diagram_p.cell_of(p_oid).common_region(diagram_q.cell_of(q_oid))
        if region.is_empty():
            continue
        audience = sum(1 for resident in residents if region.contains_point(resident))
        campaigns.append((audience, p_oid, q_oid, region.area()))
    campaigns.sort(reverse=True)

    print("top 10 joint campaigns by reachable residents")
    print("restaurant  cinema   residents   region area (km^2-equivalent)")
    for audience, p_oid, q_oid, area in campaigns[:10]:
        print(f"{p_oid:10d}  {q_oid:6d}   {audience:9d}   {area:12.0f}")

    total_audience = sum(audience for audience, *_ in campaigns)
    print(f"\nresidents covered by at least one campaign region: "
          f"{total_audience} assignments over {len(residents)} residents")
    print("(every resident lies in exactly one region, so the assignment count "
          "equals the population: the campaigns tile the city)")


if __name__ == "__main__":
    main()
