#!/usr/bin/env python3
"""Grouped nearest neighbours: CIJ as a GROUP-BY accelerator.

The paper's third application: a city has a large set L of houses and two
small facility sets — hospitals P and parks Q.  An analyst wants, for every
(hospital, park) combination, the number of houses having that hospital as
their nearest hospital *and* that park as their nearest park.

Two evaluation plans are compared:

* **double AllNN** — run an all-nearest-neighbour join of L against P and
  against Q, then group; every house needs two NN searches.
* **CIJ-based** — compute CIJ(P, Q) first; only the (hospital, park) pairs
  in the CIJ result can have a non-zero count, and each house can be
  assigned by locating it inside one common influence region.

Both plans produce identical counts; the CIJ plan touches far fewer pages of
the facility indexes because |P| x |Q| processing is replaced by the
parameter-free join of the two small sets.

Run with::

    python examples/grouped_nearest_neighbors.py
"""

from repro import clustered_points, uniform_points
from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.allnn import grouped_nearest_pairs
from repro.join.nm_cij import nm_cij
from repro.voronoi.diagram import compute_voronoi_diagram


def main() -> None:
    houses = uniform_points(5000, seed=21)
    hospitals = clustered_points(40, clusters=5, seed=22)
    parks = clustered_points(25, clusters=4, seed=23)

    workload = build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=hospitals, points_q=parks
    )
    outer = list(enumerate(houses))

    # ------------------------------------------------------------------
    # Plan A: double AllNN join + group-by.
    # ------------------------------------------------------------------
    workload.reset_measurement()
    counts_allnn = grouped_nearest_pairs(outer, workload.tree_p, workload.tree_q)
    allnn_pages = workload.disk.counters.page_accesses

    # ------------------------------------------------------------------
    # Plan B: CIJ(P, Q), then assign houses to common influence regions.
    # ------------------------------------------------------------------
    workload.reset_measurement()
    cij = nm_cij(workload.tree_p, workload.tree_q, domain=DOMAIN)
    cij_pages = workload.disk.counters.page_accesses
    with workload.disk.suspend_io_accounting():
        diagram_p = compute_voronoi_diagram(workload.tree_p, DOMAIN)
        diagram_q = compute_voronoi_diagram(workload.tree_q, DOMAIN)
    regions = {
        (p_oid, q_oid): diagram_p.cell_of(p_oid).common_region(diagram_q.cell_of(q_oid))
        for p_oid, q_oid in cij.pairs
    }
    counts_cij = {}
    for house in houses:
        for key, region in regions.items():
            if not region.is_empty() and region.contains_point(house):
                counts_cij[key] = counts_cij.get(key, 0) + 1
                break

    # ------------------------------------------------------------------
    # Compare.
    # ------------------------------------------------------------------
    print(f"houses={len(houses)}, hospitals={len(hospitals)}, parks={len(parks)}")
    print(f"hospital-park combinations          : {len(hospitals) * len(parks)}")
    print(f"CIJ pairs (candidate combinations)  : {len(cij.pairs)}")
    print(f"combinations with at least one house: {len(counts_allnn)}")
    print()
    print(f"facility-index page accesses, double AllNN plan : {allnn_pages}")
    print(f"facility-index page accesses, CIJ plan          : {cij_pages}")
    print()
    agree = counts_allnn == counts_cij
    print(f"both plans produce identical GROUP-BY counts    : {agree}")
    top = sorted(counts_allnn.items(), key=lambda kv: -kv[1])[:5]
    print("\nbusiest (hospital, park) combinations:")
    for (hospital, park), count in top:
        print(f"  hospital {hospital:3d} + park {park:3d} -> {count} houses")


if __name__ == "__main__":
    main()
