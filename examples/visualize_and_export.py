#!/usr/bin/env python3
"""Visualise a CIJ result (Figure-1 style) and export everything to disk.

Produces, in a ``cij_output/`` directory next to the working directory:

* ``restaurants.csv`` / ``cinemas.csv``  — the input pointsets,
* ``cij_pairs.csv`` (+ ``.stats.json``)  — the join result and its cost,
* ``voronoi_p.svg`` / ``voronoi_q.svg``  — the two Voronoi diagrams,
* ``cij.svg``                            — both diagrams overlaid with the
  common influence regions of the result pairs shaded (like Figure 1a of
  the paper).

Run with::

    python examples/visualize_and_export.py
"""

from pathlib import Path

from repro import clustered_points, uniform_points
from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.nm_cij import nm_cij
from repro.persistence import save_cij_result, save_pointset
from repro.viz.svg import render_cij, render_voronoi_diagram
from repro.voronoi.diagram import compute_voronoi_diagram


def main() -> None:
    output_dir = Path("cij_output")
    output_dir.mkdir(exist_ok=True)

    restaurants = clustered_points(60, clusters=5, seed=41)
    cinemas = uniform_points(25, seed=42)

    workload = build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=restaurants, points_q=cinemas
    )
    result = nm_cij(workload.tree_p, workload.tree_q, domain=DOMAIN)
    print(f"CIJ produced {len(result.pairs)} pairs "
          f"({result.stats.total_page_accesses} page accesses)")

    save_pointset(output_dir / "restaurants.csv", restaurants)
    save_pointset(output_dir / "cinemas.csv", cinemas)
    save_cij_result(output_dir / "cij_pairs.csv", result)

    with workload.disk.suspend_io_accounting():
        diagram_p = compute_voronoi_diagram(workload.tree_p, DOMAIN)
        diagram_q = compute_voronoi_diagram(workload.tree_q, DOMAIN)

    (output_dir / "voronoi_p.svg").write_text(
        render_voronoi_diagram(diagram_p, label_sites=True), encoding="utf-8"
    )
    (output_dir / "voronoi_q.svg").write_text(
        render_voronoi_diagram(diagram_q, cell_stroke="#d62728"), encoding="utf-8"
    )
    (output_dir / "cij.svg").write_text(
        render_cij(diagram_p, diagram_q, result.pairs), encoding="utf-8"
    )

    for name in ("restaurants.csv", "cinemas.csv", "cij_pairs.csv",
                 "voronoi_p.svg", "voronoi_q.svg", "cij.svg"):
        size = (output_dir / name).stat().st_size
        print(f"wrote {output_dir / name}  ({size} bytes)")


if __name__ == "__main__":
    main()
